package chaos

import (
	"os"
	"testing"
	"time"

	"rain/internal/ecc"
)

// rack3 is the 11-node, 3-rack testbed used by the schedules below: four
// nodes in rackA, four in rackB, three in rackC with n11 provisioned as a
// powered-off standby. Two nodes carry double capacity weight so the
// weighted placement path is exercised under chaos too.
var rack3 = struct {
	nodes   []string
	standby []string
	domains map[string]string
	weights map[string]float64
}{
	nodes:   []string{"n01", "n02", "n03", "n04", "n05", "n06", "n07", "n08", "n09", "n10", "n11"},
	standby: []string{"n11"},
	domains: map[string]string{
		"n01": "rackA", "n02": "rackA", "n03": "rackA", "n04": "rackA",
		"n05": "rackB", "n06": "rackB", "n07": "rackB", "n08": "rackB",
		"n09": "rackC", "n10": "rackC", "n11": "rackC",
	},
	weights: map[string]float64{"n03": 2, "n07": 2},
}

func bcode6(t *testing.T) ecc.Code {
	t.Helper()
	code, err := ecc.NewBCode(6)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestChaosRackKillAndJoinUnderTraffic is the tentpole's acceptance
// scenario: two nodes of one rack (including the leader) die at once under
// live put/get traffic, a fresh standby joins mid-rebuild, and no operator
// touches anything. The cluster must re-elect, rebalance (debounced), and
// restore full redundancy — judged through the registry and a bit-exact
// audit.
func TestChaosRackKillAndJoinUnderTraffic(t *testing.T) {
	res, err := Run(Schedule{
		Name:       "rack-kill-and-join",
		Seed:       1337,
		Nodes:      rack3.nodes,
		Standby:    rack3.standby,
		Domains:    rack3.domains,
		Weights:    rack3.weights,
		Code:       bcode6(t),
		Preload:    25,
		ObjectSize: 8 << 10,
		PutEvery:   150 * time.Millisecond,
		GetEvery:   100 * time.Millisecond,
		Events: []Event{
			// Correlated rack failure taking the leader with it.
			{At: 5 * time.Second, Kill: []string{"n01", "n02"}},
			// Fresh capacity arrives while the rebuild is still running.
			{At: 8 * time.Second, Join: map[string]string{"n11": "n05"}},
		},
		Duration: 20 * time.Second,
		Settle:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// Availability never dipped below quorum: every completed read
	// succeeded bit-exact throughout the kill and the join.
	if res.GetFails != 0 {
		t.Fatalf("%d of %d live-phase gets failed", res.GetFails, res.Gets)
	}
	if res.Gets < 100 {
		t.Fatalf("only %d gets completed: workload did not run", res.Gets)
	}
	if res.PutFails > 3 {
		t.Fatalf("%d of %d live-phase puts failed", res.PutFails, res.Puts)
	}
	// The failure-domain spread held: losing a whole rack cost at most the
	// erasure margin, so repairs happened and nothing was lost.
	if res.Repairs == 0 {
		t.Fatal("no repairs recorded for a two-node rack kill")
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("%d objects below full redundancy after settling", res.UnderReplicated)
	}
	if res.DomainViolations != 0 {
		t.Fatalf("%d objects violate the failure-domain cap", res.DomainViolations)
	}
	// Debounce held: a handful of passes (kill, join, takeover), not one
	// per view flap.
	if res.Passes == 0 || res.Passes > 6 {
		t.Fatalf("rebalance passes = %d, want 1..6", res.Passes)
	}
}

// TestChaosLeaderAssassinationWithFlaps kills the leader outright, flaps a
// link pair while the successor rebuilds, then revives the old leader: the
// revived coordinator must rescan and reconverge without losing an object.
func TestChaosLeaderAssassinationWithFlaps(t *testing.T) {
	res, err := Run(Schedule{
		Name:       "leader-assassination-flaps",
		Seed:       99,
		Nodes:      []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"},
		Code:       bcode6(t),
		Preload:    15,
		ObjectSize: 8 << 10,
		PutEvery:   200 * time.Millisecond,
		GetEvery:   150 * time.Millisecond,
		Events: []Event{
			{At: 4 * time.Second, Kill: []string{"n1"}},
			{At: 6 * time.Second, Flaps: []Flap{{A: "n3", B: "n5", Down: 500 * time.Millisecond, Up: 700 * time.Millisecond, Cycles: 3}}},
			{At: 10 * time.Second, Recover: []string{"n1"}},
		},
		Duration: 15 * time.Second,
		Settle:   15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.GetFails != 0 {
		t.Fatalf("%d of %d live-phase gets failed", res.GetFails, res.Gets)
	}
	if res.PutFails > 2 {
		t.Fatalf("%d of %d live-phase puts failed", res.PutFails, res.Puts)
	}
	if res.Repairs == 0 {
		t.Fatal("no repairs recorded for a killed leader")
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("%d objects below full redundancy after settling", res.UnderReplicated)
	}
}

// TestChaosCorruptionUnderRead exercises the full corruption-as-erasure
// loop under live read traffic: silent bit rot on one object, a torn final
// block on another, and a stalled disk mid-run. Every damaged shard must be
// detected (by a reading client or the background scrub — whoever gets
// there first), quarantined, and repaired in place, with zero failed reads
// and a bit-exact audit.
func TestChaosCorruptionUnderRead(t *testing.T) {
	res, err := Run(Schedule{
		Name:       "corruption-under-read",
		Seed:       7,
		Nodes:      []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"},
		Code:       bcode6(t),
		Preload:    12,
		ObjectSize: 48 << 10, // 8 KiB shards: two checksum blocks each
		PutEvery:   200 * time.Millisecond,
		GetEvery:   100 * time.Millisecond,
		ScrubEvery: 2 * time.Second,
		Events: []Event{
			// Bit rot in the second checksum block of one holder's shard.
			{At: 3 * time.Second, Corrupt: []Corruption{{Object: "pre-0001", Holder: 1, Block: 1}}},
			// Torn final block on another object.
			{At: 5 * time.Second, Corrupt: []Corruption{{Object: "pre-0007", Holder: 3, Block: -1}}},
			// A disk that hangs instead of failing: reads hedge around it.
			{At: 7 * time.Second, StallDisk: []string{"n4"}},
			{At: 9 * time.Second, ClearFaults: []string{"n4"}},
		},
		Duration: 12 * time.Second,
		Settle:   12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsInjected != 2 || res.CorruptionsFound != 2 {
		t.Fatalf("corruptions found = %d, injected = %d, want both 2", res.CorruptionsFound, res.CorruptionsInjected)
	}
	if res.GetFails != 0 {
		t.Fatalf("%d of %d live-phase gets failed", res.GetFails, res.Gets)
	}
	if res.SpotRepairsDone < 2 {
		t.Fatalf("spot repairs done = %d, want both corrupt shards re-created", res.SpotRepairsDone)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("%d objects below full redundancy after settling", res.UnderReplicated)
	}
}

// TestChaosCorruptionAtBareQuorum is the integrity tentpole's acceptance
// scenario on rs(10,8): one shard of an object rots and is found by the
// background scrub; later a second shard rots, a third holder is killed in
// the same instant, and the object is read right through the mess — at that
// moment one holder is dead and one is corrupt, so exactly the erasure
// margin is gone and the survivors are bare quorum. The read must come back
// bit-exact, both corruptions must be detected and repaired in place, and
// the settle audit must find full redundancy and zero loss.
func TestChaosCorruptionAtBareQuorum(t *testing.T) {
	rs108, err := ecc.NewReedSolomon(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Schedule{
		Name:       "corruption-at-bare-quorum",
		Seed:       42,
		Nodes:      []string{"n01", "n02", "n03", "n04", "n05", "n06", "n07", "n08", "n09", "n10", "n11", "n12"},
		Code:       rs108,
		Preload:    10,
		ObjectSize: 64 << 10, // 8 KiB shards across 10 holders
		PutEvery:   300 * time.Millisecond,
		ScrubEvery: 2 * time.Second,
		Events: []Event{
			// First corruption: nothing reads this object, so only the
			// scrub can find it.
			{At: 3 * time.Second, Corrupt: []Corruption{{Object: "pre-0000", Holder: 0, Block: 0}}},
			// Second corruption plus a killed holder, then an immediate
			// read: the get survives on bare quorum, discovering the
			// corrupt shard as one more erasure on the way.
			{
				At:          8 * time.Second,
				Corrupt:     []Corruption{{Object: "pre-0000", Holder: 4, Block: 1}},
				KillHolders: []HolderRef{{Object: "pre-0000", Holder: 7}},
				Get:         []string{"pre-0000"},
			},
		},
		Duration: 12 * time.Second,
		Settle:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 2 {
		t.Fatalf("corruptions found = %d, want exactly the 2 injected", res.CorruptionsFound)
	}
	if res.ScrubFound < 1 {
		t.Fatal("the unread corruption was never found by the scrub")
	}
	if res.GetFails != 0 {
		t.Fatalf("%d of %d gets failed (the bare-quorum read must stay bit-exact)", res.GetFails, res.Gets)
	}
	if res.SpotRepairsDone < 2 {
		t.Fatalf("spot repairs done = %d, want both corrupt shards re-created in place", res.SpotRepairsDone)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("%d objects below full redundancy after settling", res.UnderReplicated)
	}
}

// TestChaosLongHaul is the RAIN_SMOKE-gated long variant: rolling kills and
// recoveries across racks, a correlated rack-C failure healed by the
// standby, and link flapping, over minutes of virtual time. The build fails
// if any schedule ends with an unreadable object.
func TestChaosLongHaul(t *testing.T) {
	if os.Getenv("RAIN_SMOKE") == "" {
		t.Skip("set RAIN_SMOKE=1 to run the long chaos schedule")
	}
	res, err := Run(Schedule{
		Name:       "long-haul",
		Seed:       2026,
		Nodes:      rack3.nodes,
		Standby:    rack3.standby,
		Domains:    rack3.domains,
		Weights:    rack3.weights,
		Code:       bcode6(t),
		Preload:    40,
		ObjectSize: 16 << 10,
		PutEvery:   250 * time.Millisecond,
		GetEvery:   150 * time.Millisecond,
		Events: []Event{
			{At: 10 * time.Second, Kill: []string{"n05"}},
			{At: 30 * time.Second, Flaps: []Flap{{A: "n01", B: "n06", Down: time.Second, Up: 2 * time.Second, Cycles: 5}}},
			{At: 40 * time.Second, Recover: []string{"n05"}},
			{At: 60 * time.Second, Kill: []string{"n09", "n10"}},
			{At: 70 * time.Second, Join: map[string]string{"n11": "n04"}},
			{At: 90 * time.Second, Recover: []string{"n09", "n10"}},
		},
		Duration: 2 * time.Minute,
		Settle:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("%d objects below full redundancy after settling", res.UnderReplicated)
	}
	if res.GetFails != 0 {
		t.Fatalf("%d of %d live-phase gets failed", res.GetFails, res.Gets)
	}
}
