package chaos

import (
	"errors"
	"sync"

	"rain/internal/storage"
)

// ErrEIO is the synthetic medium error a FaultyStore returns while its EIO
// fault is armed — the disk answered, and the answer was an error. The
// daemon NAKs it like any backend failure, so the client treats the holder
// as one more erasure.
var ErrEIO = errors.New("chaos: injected I/O error")

// FaultyStore wraps a node's shard backend with scripted disk faults. It
// sits between the storage daemon and the medium (the dstore.Store seam), so
// every fault is exercised through the full wire path, not a test shim:
//
//   - FlipBit / TearFinal silently damage committed shard bytes, to be
//     discovered later by checksum verification on a read or a scrub;
//   - EIO makes reads and verifies fail loudly;
//   - Stall makes reads hang (storage.ErrStalled): the daemon drops the
//     request without a NAK and the client's hedge timer is the only way out.
//
// Faults gate the read paths only — commits still land — because the
// corruption model under test is bit rot and torn writes on data already
// acknowledged, the silent failures checksums exist for.
type FaultyStore struct {
	inner *storage.Backend

	mu    sync.Mutex
	eio   bool
	stall bool
}

// NewFaultyStore wraps a backend; no faults are armed initially.
func NewFaultyStore(b *storage.Backend) *FaultyStore { return &FaultyStore{inner: b} }

// SetEIO arms or clears the hard-error fault on reads and verifies.
func (f *FaultyStore) SetEIO(on bool) {
	f.mu.Lock()
	f.eio = on
	f.mu.Unlock()
}

// SetStall arms or clears the hung-disk fault on reads.
func (f *FaultyStore) SetStall(on bool) {
	f.mu.Lock()
	f.stall = on
	f.mu.Unlock()
}

// readFault reports the currently armed read fault, if any.
func (f *FaultyStore) readFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stall {
		return storage.ErrStalled
	}
	if f.eio {
		return ErrEIO
	}
	return nil
}

// FlipBit XORs one bit of a committed shard at the given byte offset —
// silent bit rot the checksum layer must catch.
func (f *FaultyStore) FlipBit(id string, off int64) error {
	return f.inner.CorruptShard(id, off)
}

// TearFinal drops the last byte of a committed shard — a torn final block,
// detected as corruption by the recorded-length check rather than a
// checksum mismatch.
func (f *FaultyStore) TearFinal(id string) error {
	info, err := f.inner.Info(id)
	if err != nil {
		return err
	}
	n := int64(info.ShardLen) - 1
	if n < 0 {
		n = 0
	}
	return f.inner.TruncateShard(id, n)
}

// dstore.Store implementation: writes pass through untouched, reads and
// verifies go through the armed fault first.

func (f *FaultyStore) NewStage() *storage.Stage { return f.inner.NewStage() }

func (f *FaultyStore) Commit(s *storage.Stage, id string, shardIdx, dataLen, blockLen int) error {
	return f.inner.Commit(s, id, shardIdx, dataLen, blockLen)
}

func (f *FaultyStore) Info(id string) (storage.ObjectInfo, error) { return f.inner.Info(id) }

func (f *FaultyStore) ReadAt(id string, p []byte, off int64) error {
	if err := f.readFault(); err != nil {
		return err
	}
	return f.inner.ReadAt(id, p, off)
}

func (f *FaultyStore) Verify(id string) (int, int64, error) {
	if err := f.readFault(); err != nil {
		return 0, 0, err
	}
	return f.inner.Verify(id)
}

func (f *FaultyStore) Delete(id string) { f.inner.Delete(id) }

func (f *FaultyStore) List() []storage.ObjectInfo { return f.inner.List() }

func (f *FaultyStore) Generation() uint64 { return f.inner.Generation() }
