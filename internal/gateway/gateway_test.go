package gateway_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rain/internal/dstore"
	"rain/internal/ecc"
	"rain/internal/gateway"
	"rain/internal/rt"
	"rain/internal/rudp"
	"rain/internal/sim"
	"rain/internal/storage"
)

// harness is a 6-node simulated dstore cluster driven by an rt.Loop against
// the wall clock, with the gateway serving over node a's client — the same
// loop discipline a real node runs, minus the sockets, so the HTTP
// semantics are exercised deterministically and fast.
type harness struct {
	t        *testing.T
	loop     *rt.Loop
	client   *dstore.Client
	backends map[string]*storage.Backend
	gw       *gateway.Gateway
	srv      *httptest.Server
}

func newHarness(t *testing.T, seed int64, cfg gateway.Config) *harness {
	t.Helper()
	code, err := ecc.NewReedSolomon(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]string, 6)
	for i := range nodes {
		nodes[i] = string(rune('a' + i))
	}
	h := &harness{t: t, loop: rt.New(seed), backends: make(map[string]*storage.Backend)}
	h.loop.Start()
	t.Cleanup(h.loop.Stop)
	ok := h.loop.Call(func() {
		s := h.loop.Scheduler()
		net := sim.NewNetwork(s)
		sim.ApplyProfile(net, nodes, 2, sim.ProfileLAN)
		mesh, merr := rudp.NewMesh(s, net, nodes, rudp.Config{})
		if merr != nil {
			err = merr
			return
		}
		clock := func() time.Time { return time.Unix(0, int64(s.Now())) }
		for i, node := range nodes {
			backend := storage.NewBackend()
			h.backends[node] = backend
			dstore.NewDaemon(mesh, node, i, backend, 4<<10, dstore.WithDaemonClock(clock))
			cl, cerr := dstore.NewClient(s, mesh, node, dstore.Config{
				Code: code, Peers: nodes, ChunkSize: 4 << 10,
			})
			if cerr != nil {
				err = cerr
				return
			}
			if node == "a" {
				h.client = cl
			}
		}
	})
	if !ok || err != nil {
		t.Fatalf("building harness: ok=%v err=%v", ok, err)
	}
	h.gw = gateway.New(h.loop.Call, h.client, cfg)
	h.srv = httptest.NewServer(h.gw)
	t.Cleanup(h.srv.Close)
	time.Sleep(50 * time.Millisecond) // path monitors come up in wall time
	return h
}

func (h *harness) url(key string) string { return h.srv.URL + "/o/" + key }

func (h *harness) put(key string, data []byte) *http.Response {
	h.t.Helper()
	req, err := http.NewRequest(http.MethodPut, h.url(key), bytes.NewReader(data))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func (h *harness) get(key string, hdr map[string]string) (*http.Response, []byte) {
	h.t.Helper()
	req, err := http.NewRequest(http.MethodGet, h.url(key), nil)
	if err != nil {
		h.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		h.t.Fatal(err)
	}
	return resp, body
}

// pending reads the client's live request-handler count on the loop.
func (h *harness) pending() int {
	n := -1
	h.loop.Call(func() { n = h.client.PendingRequests() })
	return n
}

// waitDrained waits for every daemon session and request handler to settle.
func (h *harness) waitDrained() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.pending() != 0 {
		if time.Now().After(deadline) {
			h.t.Fatalf("%d request handlers still live", h.pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestPutGetRoundtrip stores through HTTP and reads back bit-exact, with
// ETag and conditional If-Match behavior.
func TestPutGetRoundtrip(t *testing.T) {
	h := newHarness(t, 1, gateway.Config{})
	data := randBytes(42, 150<<10)
	resp := h.put("movie", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	wantETag := `"` + hex.EncodeToString(func() []byte { s := sha256.Sum256(data); return s[:] }()) + `"`
	if got := resp.Header.Get("ETag"); got != wantETag {
		t.Fatalf("put ETag %q, want %q", got, wantETag)
	}

	resp, body := h.get("movie", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("get status %d, equal=%v", resp.StatusCode, bytes.Equal(body, data))
	}
	if got := resp.Header.Get("ETag"); got != wantETag {
		t.Fatalf("get ETag %q, want %q", got, wantETag)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(data)) {
		t.Fatalf("Content-Length %q", cl)
	}

	// Conditional reads: matching tag serves, stale tag refuses.
	resp, _ = h.get("movie", map[string]string{"If-Match": wantETag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching If-Match: status %d", resp.StatusCode)
	}
	resp, _ = h.get("movie", map[string]string{"If-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match: status %d", resp.StatusCode)
	}

	// HEAD carries the metadata without a body.
	req, _ := http.NewRequest(http.MethodHead, h.url("movie"), nil)
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || hr.Header.Get("Content-Length") != fmt.Sprint(len(data)) {
		t.Fatalf("head status %d length %q", hr.StatusCode, hr.Header.Get("Content-Length"))
	}

	// Dotted keys are the gateway's hidden namespace.
	if resp := h.put(".sneaky", []byte("x")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dotted key: status %d", resp.StatusCode)
	}
	// Missing objects are a clean 404.
	if resp, _ := h.get("ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object: status %d", resp.StatusCode)
	}
	h.waitDrained()
}

// TestRangedReads exercises Range GETs at block boundaries ±1 — the stored
// block size is 64 KiB — plus suffix and clamped ranges, all served off the
// decode frontier with the metadata hint.
func TestRangedReads(t *testing.T) {
	h := newHarness(t, 2, gateway.Config{})
	const size = 200 << 10
	const bs = 64 << 10
	data := randBytes(7, size)
	if resp := h.put("obj", data); resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	cases := []struct {
		spec     string
		from, to int64 // inclusive byte range expected back
	}{
		{"bytes=0-9", 0, 9},
		{fmt.Sprintf("bytes=%d-%d", bs-1, bs), bs - 1, bs}, // straddles the boundary
		{fmt.Sprintf("bytes=%d-%d", bs, bs), bs, bs},       // exactly one byte at the boundary
		{fmt.Sprintf("bytes=%d-%d", bs+1, bs+100), bs + 1, bs + 100},
		{fmt.Sprintf("bytes=%d-%d", 2*bs-1, 3*bs), 2*bs - 1, 3 * bs},       // spans three blocks
		{fmt.Sprintf("bytes=%d-", 3*bs), 3 * bs, size - 1},                 // the short final block
		{"bytes=-5", size - 5, size - 1},                                   // suffix
		{fmt.Sprintf("bytes=%d-%d", size-5, size+100), size - 5, size - 1}, // clamped
	}
	for _, tc := range cases {
		resp, body := h.get("obj", map[string]string{"Range": tc.spec})
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("%s: status %d", tc.spec, resp.StatusCode)
		}
		want := data[tc.from : tc.to+1]
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: got %d bytes, want %d (first diff at %d)", tc.spec, len(body), len(want), firstDiff(body, want))
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", tc.from, tc.to, size)
		if cr := resp.Header.Get("Content-Range"); cr != wantCR {
			t.Fatalf("%s: Content-Range %q, want %q", tc.spec, cr, wantCR)
		}
	}
	// A range past the end is unsatisfiable.
	resp, _ := h.get("obj", map[string]string{"Range": fmt.Sprintf("bytes=%d-", size)})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-the-end range: status %d", resp.StatusCode)
	}
	// A full-coverage range is served as a plain 200.
	resp, body := h.get("obj", map[string]string{"Range": fmt.Sprintf("bytes=0-%d", size-1)})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("full range: status %d equal=%v", resp.StatusCode, bytes.Equal(body, data))
	}
	h.waitDrained()
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestClientDisconnectMidTransfer kills the HTTP client partway through a
// large GET whose decode is throttled by a small pipe, and asserts the
// retrieve is cancelled — no daemon session or request handler leaks.
func TestClientDisconnectMidTransfer(t *testing.T) {
	h := newHarness(t, 3, gateway.Config{PipeBuffer: 128 << 10})
	data := randBytes(9, 2<<20)
	if resp := h.put("big", data); resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	resp, err := http.Get(h.url("big"))
	if err != nil {
		t.Fatal(err)
	}
	// Read a slice, then vanish.
	if _, err := io.ReadFull(resp.Body, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	h.waitDrained()

	// The cluster is unharmed: the object still reads back whole.
	resp2, body := h.get("big", nil)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("after disconnect: status %d equal=%v", resp2.StatusCode, bytes.Equal(body, data))
	}
	h.waitDrained()
}

// TestListPagination walks a listing in pages through the continuation
// token and checks the hidden metadata namespace never shows.
func TestListPagination(t *testing.T) {
	h := newHarness(t, 4, gateway.Config{})
	keys := []string{"k1", "k2", "k3", "k4", "k5"}
	for i, k := range keys {
		if resp := h.put(k, randBytes(int64(i), 5<<10)); resp.StatusCode != http.StatusOK {
			t.Fatalf("put %s: status %d", k, resp.StatusCode)
		}
	}
	var got []string
	start := ""
	for page := 0; ; page++ {
		if page > 5 {
			t.Fatal("pagination never terminated")
		}
		resp, body := h.get("?max=2&start="+start, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list status %d", resp.StatusCode)
		}
		var lp struct {
			Objects []struct {
				Key    string `json:"key"`
				Size   int64  `json:"size"`
				Shards int    `json:"shards"`
			} `json:"objects"`
			Truncated bool   `json:"truncated"`
			Next      string `json:"next"`
		}
		if err := json.Unmarshal(body, &lp); err != nil {
			t.Fatalf("list body: %v", err)
		}
		for _, o := range lp.Objects {
			if strings.HasPrefix(o.Key, ".") {
				t.Fatalf("hidden key %q leaked into the listing", o.Key)
			}
			if o.Size != 5<<10 || o.Shards != 6 {
				t.Fatalf("entry %+v", o)
			}
			got = append(got, o.Key)
		}
		if !lp.Truncated {
			break
		}
		start = lp.Next
	}
	if strings.Join(got, ",") != strings.Join(keys, ",") {
		t.Fatalf("paged listing = %v, want %v", got, keys)
	}
	h.waitDrained()
}

// TestConcurrentPutsSameKey races two writers on one key: both must
// succeed, and the final object must be exactly one of the two bodies
// (never an interleaving) with its metadata in agreement.
func TestConcurrentPutsSameKey(t *testing.T) {
	h := newHarness(t, 5, gateway.Config{})
	a := randBytes(100, 100<<10)
	b := randBytes(200, 130<<10)
	var wg sync.WaitGroup
	status := make([]int, 2)
	for i, body := range [][]byte{a, b} {
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPut, h.url("contended"), bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			resp.Body.Close()
			status[i] = resp.StatusCode
		}(i, body)
	}
	wg.Wait()
	if status[0] != http.StatusOK || status[1] != http.StatusOK {
		t.Fatalf("put statuses %v", status)
	}
	resp, body := h.get("contended", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, a) && !bytes.Equal(body, b) {
		t.Fatalf("final object is neither writer's body (len %d)", len(body))
	}
	sum := sha256.Sum256(body)
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; resp.Header.Get("ETag") != want {
		t.Fatalf("ETag %q disagrees with the surviving body", resp.Header.Get("ETag"))
	}
	h.waitDrained()
}

// TestDeleteAndAdmission deletes through the gateway and checks the 429
// admission path.
func TestDeleteAndAdmission(t *testing.T) {
	h := newHarness(t, 6, gateway.Config{})
	if resp := h.put("doomed", randBytes(1, 10<<10)); resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, h.url("doomed"), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if resp, _ := h.get("doomed", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}

	// Admission: a gateway with a tiny in-flight budget sheds the request
	// with 429 + Retry-After instead of queueing it.
	tiny := gateway.New(h.loop.Call, h.client, gateway.Config{MaxInflightBytes: 1})
	srv := httptest.NewServer(tiny)
	defer srv.Close()
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/o/nope", bytes.NewReader(make([]byte, 1<<10)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("admission: status %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	h.waitDrained()
}

// TestCorruptObjectIs502 damages more shards of one object than the code's
// erasure margin can absorb and reads it back: the failure is verified
// corruption, not absence, so the gateway must answer 502 Bad Gateway (the
// store is at fault, the request was fine) with a body naming the object.
func TestCorruptObjectIs502(t *testing.T) {
	h := newHarness(t, 21, gateway.Config{})
	if resp := h.put("rotten", randBytes(5, 32<<10)); resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	// rs(6,4) tolerates 2 erasures; corrupt 3 of the data object's shards
	// (the meta object stays intact so the GET reaches the data path).
	corrupted := 0
	for _, b := range h.backends {
		if corrupted == 3 {
			break
		}
		for _, info := range b.List() {
			if info.ID != "rotten" {
				continue
			}
			if err := b.CorruptShard(info.ID, 0); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted != 3 {
		t.Fatalf("corrupted %d shards, want 3", corrupted)
	}
	resp, body := h.get("rotten", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("get corrupt object: status %d, want 502 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "rotten") {
		t.Fatalf("502 body does not name the object: %q", body)
	}
	h.waitDrained()
}
