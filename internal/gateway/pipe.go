package gateway

import (
	"errors"
	"sync"
)

// getPipe is the bounded buffer between the loop-side streaming decode and
// the handler goroutine draining to the HTTP response. The decode writes
// whole blocks into it (never blocking the loop: GetOptions.Ready consults
// ready() before each block, so at most one block overshoots max), the
// consumer reads on its own pace, and the producer is re-driven with
// Handle.Resume when consumption frees space. A consumer that vanished
// kills the pipe, which fails the next loop-side Write and aborts the
// decode — the daemons' sessions are cancelled, not leaked.
type getPipe struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	max  int

	paused  bool // producer saw a full pipe: the consumer must Resume it
	wclosed bool // producer finished (werr holds the outcome)
	werr    error
	dead    bool // consumer gone
}

var errConsumerGone = errors.New("gateway: response consumer gone")

func newGetPipe(max int) *getPipe {
	p := &getPipe{max: max}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Write appends decoded bytes; loop-side (the decoder's sink).
func (p *getPipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return 0, errConsumerGone
	}
	p.buf = append(p.buf, b...)
	p.cond.Signal()
	return len(b), nil
}

// ready gates the decode on downstream backpressure; loop-side. A false
// return pauses the operation, so it also records that the consumer owes a
// Resume.
func (p *getPipe) ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return true // let the decode run into Write's error and abort
	}
	if len(p.buf) >= p.max {
		p.paused = true
		return false
	}
	return true
}

// closeWrite marks the producer done with its outcome; loop-side.
func (p *getPipe) closeWrite(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wclosed = true
	p.werr = err
	p.cond.Broadcast()
}

// kill marks the consumer gone; consumer-side.
func (p *getPipe) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = true
	p.cond.Broadcast()
}

// read blocks for the next bytes; consumer-side. wake reports that the
// producer paused on a full pipe and this read freed space — the caller
// must post Handle.Resume. done (non-nil error return) means the stream
// ended; the outcome is in err().
func (p *getPipe) read(dst []byte) (n int, wake bool, done error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.wclosed && !p.dead {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		return 0, false, errConsumerGone // closed or dead: stream over
	}
	n = copy(dst, p.buf)
	rest := copy(p.buf, p.buf[n:])
	p.buf = p.buf[:rest]
	if p.paused && len(p.buf) < p.max {
		p.paused = false
		wake = true
	}
	return n, wake, nil
}

// err reports the producer's outcome once read signalled the end.
func (p *getPipe) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.werr
}
