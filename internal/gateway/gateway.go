// Package gateway is the cluster's client surface: an S3-flavored HTTP
// front end over a dstore client. Objects are stored and retrieved with
// the erasure-coded streaming paths — PUT feeds the request body through
// the push-mode put feed under the daemons' credit windows, GET serves
// ranged reads off the streaming decode frontier through a bounded pipe —
// so gateway memory stays O(BlockSize × n) per request however large the
// object.
//
// The client lives on a single-goroutine event loop (an rt.Loop on real
// nodes, a pumped simulator in tests); the gateway bridges each HTTP
// request onto it with the call function and never blocks the loop: bodies
// are read and responses written on the handler goroutine, with the loop
// touched only in posted closures.
//
// Routes:
//
//	PUT    /o/{key}   store an object (Content-Length required)
//	GET    /o/{key}   retrieve, honoring Range and If-Match
//	HEAD   /o/{key}   metadata only
//	DELETE /o/{key}   drop the object cluster-wide
//	GET    /o/        list objects (?start= continuation, ?max= page size)
package gateway

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rain/internal/dstore"
	"rain/internal/telemetry"
)

// metaPrefix keys the per-object metadata records. User keys must not start
// with a dot, so the hidden namespace cannot collide and listings simply
// skip it.
const metaPrefix = ".m:"

// StatusClientClosed is reported when the requesting client vanished
// mid-transfer (nginx's 499, the conventional code for it).
const StatusClientClosed = 499

// objectMeta is the metadata record written alongside every object the
// gateway stores: the exact length and block size aim ranged reads at the
// right shard blocks, the content hash serves ETag / If-Match.
type objectMeta struct {
	Size   int64  `json:"size"`
	Block  int64  `json:"block"`
	SHA256 string `json:"sha256"`
}

func (m objectMeta) etag() string { return `"` + m.SHA256 + `"` }

// Config parameterises a Gateway.
type Config struct {
	// MaxInflightBytes bounds the summed buffer footprint of in-flight
	// requests; admission past it answers 429 + Retry-After. Default 64 MiB.
	MaxInflightBytes int64
	// PipeBuffer is the per-GET decode pipe size (default 1 MiB): how far
	// the decode frontier may run ahead of a slow reader before the
	// operation pauses on its credit windows.
	PipeBuffer int
	// MaxList caps one listing page (default 1000).
	MaxList int
	// Telemetry and Tracer default to the process-wide instances.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// routeMetrics is one route family's counters.
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	bytes    *telemetry.Counter
	latency  *telemetry.Histogram
}

// Gateway is an http.Handler serving the object API over one node's dstore
// client. call must run its closure on the client's owning loop goroutine
// and report whether it ran (false once the loop is stopped).
type Gateway struct {
	call   func(func()) bool
	client *dstore.Client
	cfg    Config
	tracer *telemetry.Tracer

	inflight atomic.Int64

	mu    sync.Mutex
	locks map[string]*keyLock

	met struct {
		put, get, head, delete, list routeMetrics
		rejected                     *telemetry.Counter
		inflight                     *telemetry.Gauge
	}
}

// keyLock serializes PUTs to one key so concurrent writers commit whole
// objects in some order instead of interleaving shard overwrites.
type keyLock struct {
	ch   chan struct{}
	refs int
}

// New builds a gateway over a loop-owned client.
func New(call func(func()) bool, client *dstore.Client, cfg Config) *Gateway {
	if cfg.MaxInflightBytes == 0 {
		cfg.MaxInflightBytes = 64 << 20
	}
	if cfg.PipeBuffer == 0 {
		cfg.PipeBuffer = 1 << 20
	}
	if cfg.MaxList == 0 {
		cfg.MaxList = 1000
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.DefaultTracer()
	}
	g := &Gateway{call: call, client: client, cfg: cfg, tracer: cfg.Tracer, locks: make(map[string]*keyLock)}
	scope := cfg.Telemetry.Label("component", "gateway")
	mk := func(route string) routeMetrics {
		return routeMetrics{
			requests: scope.Counter("gateway."+route+".requests", route+" requests served"),
			errors:   scope.Counter("gateway."+route+".errors", route+" requests that failed"),
			bytes:    scope.Counter("gateway."+route+".bytes", "object bytes moved by "+route),
			latency:  scope.Histogram("gateway."+route+".latency_us", route+" request latency in microseconds"),
		}
	}
	g.met.put, g.met.get, g.met.head = mk("put"), mk("get"), mk("head")
	g.met.delete, g.met.list = mk("delete"), mk("list")
	g.met.rejected = scope.Counter("gateway.admission.rejected", "requests shed by the in-flight byte cap")
	g.met.inflight = scope.Gauge("gateway.admission.inflight_bytes", "reserved in-flight request buffer bytes")
	return g
}

// reserve admits cost bytes of request buffer, or refuses.
func (g *Gateway) reserve(cost int64) bool {
	for {
		cur := g.inflight.Load()
		if cur+cost > g.cfg.MaxInflightBytes {
			g.met.rejected.Inc()
			return false
		}
		if g.inflight.CompareAndSwap(cur, cur+cost) {
			g.met.inflight.Set(cur + cost)
			return true
		}
	}
}

func (g *Gateway) release(cost int64) {
	g.met.inflight.Set(g.inflight.Add(-cost))
}

// lockKey serializes writers to one key; the returned func unlocks.
func (g *Gateway) lockKey(key string) func() {
	g.mu.Lock()
	l := g.locks[key]
	if l == nil {
		l = &keyLock{ch: make(chan struct{}, 1)}
		g.locks[key] = l
	}
	l.refs++
	g.mu.Unlock()
	l.ch <- struct{}{}
	return func() {
		<-l.ch
		g.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(g.locks, key)
		}
		g.mu.Unlock()
	}
}

// statusOf maps the dstore error taxonomy to HTTP in one place.
func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, dstore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, dstore.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, dstore.ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosed
	case errors.Is(err, dstore.ErrCorrupt):
		// Verified corruption made the object unreadable: the store, not
		// the request, is at fault — 502, and the body names the object.
		return http.StatusBadGateway
	case errors.Is(err, dstore.ErrQuorum):
		return http.StatusServiceUnavailable
	case errors.Is(err, dstore.ErrShortSource), errors.Is(err, dstore.ErrLongSource):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (g *Gateway) httpError(w http.ResponseWriter, err error) {
	code := statusOf(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), code)
}

// ServeHTTP routes /o/... requests; anything else is 404.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, ok := strings.CutPrefix(r.URL.Path, "/o/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	if key == "" {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		g.observe(g.met.list, g.serveList(w, r))
		return
	}
	if strings.HasPrefix(key, ".") {
		http.Error(w, "keys must not start with '.'", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.observe(g.met.put, g.servePut(w, r, key))
	case http.MethodGet:
		g.observe(g.met.get, g.serveGet(w, r, key, true))
	case http.MethodHead:
		g.observe(g.met.head, g.serveGet(w, r, key, false))
	case http.MethodDelete:
		g.observe(g.met.delete, g.serveDelete(w, r, key))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// observe records one finished request on its route family.
func (g *Gateway) observe(m routeMetrics, res result) {
	m.requests.Inc()
	m.bytes.Add(res.bytes)
	m.latency.Observe(int64(res.took / time.Microsecond))
	if res.err != nil {
		m.errors.Inc()
	}
}

// result is what each route handler reports for telemetry.
type result struct {
	bytes int64
	took  time.Duration
	err   error
}

// ---- loop bridges ----

// errStopped is returned when the node's loop has shut down under a request.
var errStopped = fmt.Errorf("gateway: node stopped: %w", dstore.ErrCanceled)

// getObject fetches a whole (small) object through the loop.
func (g *Gateway) getObject(ctx context.Context, id string) ([]byte, error) {
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	var h *dstore.Handle
	if !g.call(func() {
		h = g.client.GetAsync(id, func(d []byte, e error) { ch <- res{d, e} })
	}) {
		return nil, errStopped
	}
	select {
	case r := <-ch:
		return r.data, r.err
	case <-ctx.Done():
		if !g.call(func() { h.Cancel() }) {
			return nil, errStopped
		}
		r := <-ch
		return r.data, r.err
	}
}

// putObject stores a whole (small) object through the loop.
func (g *Gateway) putObject(ctx context.Context, id string, data []byte) error {
	ch := make(chan error, 1)
	var h *dstore.Handle
	if !g.call(func() {
		h = g.client.PutAsync(id, data, func(_ int, e error) { ch <- e })
	}) {
		return errStopped
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		if !g.call(func() { h.Cancel() }) {
			return errStopped
		}
		return <-ch
	}
}

// fetchMeta loads an object's metadata record; ok reports whether one
// exists (legacy objects stored without the gateway have none).
func (g *Gateway) fetchMeta(ctx context.Context, key string) (objectMeta, bool, error) {
	data, err := g.getObject(ctx, metaPrefix+key)
	if errors.Is(err, dstore.ErrNotFound) {
		return objectMeta{}, false, nil
	}
	if err != nil {
		return objectMeta{}, false, err
	}
	var m objectMeta
	if json.Unmarshal(data, &m) != nil {
		return objectMeta{}, false, nil // unreadable record: treat as absent
	}
	return m, true, nil
}

// ---- PUT ----

func (g *Gateway) servePut(w http.ResponseWriter, r *http.Request, key string) result {
	start := time.Now()
	if r.ContentLength < 0 {
		http.Error(w, "Content-Length required", http.StatusLengthRequired)
		return result{took: time.Since(start), err: errors.New("length required")}
	}
	size := r.ContentLength
	// The streaming put's real memory footprint: one block fanned into n
	// shard queues under the credit windows, whatever the object size.
	cost := int64(g.client.BlockSize()) * int64(g.client.Code().N())
	if size < cost {
		cost = size + 1
	}
	if !g.reserve(cost) {
		g.httpError(w, fmt.Errorf("%w: gateway at its in-flight byte cap", dstore.ErrOverloaded))
		return result{took: time.Since(start), err: dstore.ErrOverloaded}
	}
	defer g.release(cost)
	unlock := g.lockKey(key)
	defer unlock()

	tr := g.trace("http.put", key)
	meta, err := g.doPut(r, key, size)
	g.finishTrace(tr, err)
	if err != nil {
		g.httpError(w, err)
		return result{took: time.Since(start), err: err}
	}
	w.Header().Set("ETag", meta.etag())
	w.WriteHeader(http.StatusOK)
	return result{bytes: size, took: time.Since(start)}
}

// doPut feeds the request body through the push-mode put and, on success,
// writes the metadata record.
func (g *Gateway) doPut(r *http.Request, key string, size int64) (objectMeta, error) {
	ctx := r.Context()
	fd, err := g.newFeed(key, size)
	if err != nil {
		return objectMeta{}, err
	}
	sum := sha256.New()
	buf := make([]byte, 64<<10)
	for {
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			sum.Write(buf[:n])
			if err := fd.offer(ctx, buf[:n]); err != nil {
				fd.abort()
				return objectMeta{}, err
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			fd.abort()
			return objectMeta{}, fmt.Errorf("%w: reading request body: %v", dstore.ErrCanceled, rerr)
		}
	}
	if err := fd.close(ctx); err != nil {
		return objectMeta{}, err
	}
	meta := objectMeta{
		Size:   size,
		Block:  int64(g.client.BlockSize()),
		SHA256: hex.EncodeToString(sum.Sum(nil)),
	}
	mj, _ := json.Marshal(meta)
	return meta, g.putObject(ctx, metaPrefix+key, mj)
}

// feed bridges a loop-owned dstore.PutFeed to the handler goroutine.
type feed struct {
	g    *Gateway
	f    *dstore.PutFeed
	room chan struct{}
	done chan struct{}
	err  error
}

func (g *Gateway) newFeed(id string, size int64) (*feed, error) {
	fd := &feed{g: g, room: make(chan struct{}, 1), done: make(chan struct{})}
	var err error
	if !g.call(func() {
		fd.f, err = g.client.NewPutFeed(id, size, func(_ int, e error) {
			fd.err = e
			close(fd.done)
		})
		if err == nil {
			fd.f.OnRoom(func() {
				select {
				case fd.room <- struct{}{}:
				default:
				}
			})
		}
	}) {
		return nil, errStopped
	}
	if err != nil {
		return nil, err
	}
	return fd, nil
}

// offer delivers bytes, blocking the producer — never the loop — while the
// credit windows are full.
func (fd *feed) offer(ctx context.Context, p []byte) error {
	room := false
	if !fd.g.call(func() { room = fd.f.Offer(p) }) {
		return errStopped
	}
	if room {
		return nil
	}
	select {
	case <-fd.room:
		return nil
	case <-fd.done:
		return nil // outcome surfaces at close
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (fd *feed) close(ctx context.Context) error {
	if !fd.g.call(fd.f.Close) {
		return errStopped
	}
	select {
	case <-fd.done:
		return fd.err
	case <-ctx.Done():
		if !fd.g.call(fd.f.Cancel) {
			return errStopped
		}
		<-fd.done
		return fd.err
	}
}

func (fd *feed) abort() {
	fd.g.call(fd.f.Cancel)
}

// ---- GET / HEAD ----

func (g *Gateway) serveGet(w http.ResponseWriter, r *http.Request, key string, body bool) result {
	start := time.Now()
	ctx := r.Context()
	meta, hasMeta, err := g.fetchMeta(ctx, key)
	if err != nil {
		g.httpError(w, err)
		return result{took: time.Since(start), err: err}
	}
	size := int64(-1)
	if hasMeta {
		size = meta.Size
	} else {
		// Legacy object (stored without the gateway): the merged inventory
		// is the only size authority, and 404s surface here.
		st, serr := g.stat(ctx, key)
		if serr != nil {
			g.httpError(w, serr)
			return result{took: time.Since(start), err: serr}
		}
		size = st.DataLen
	}
	if im := r.Header.Get("If-Match"); im != "" && im != "*" {
		if !hasMeta || !matchETag(im, meta.etag()) {
			http.Error(w, "precondition failed", http.StatusPreconditionFailed)
			return result{took: time.Since(start), err: errors.New("precondition failed")}
		}
	}

	off, length := int64(0), int64(-1)
	status := http.StatusOK
	if rng := r.Header.Get("Range"); rng != "" && size >= 0 {
		var ok bool
		off, length, ok = parseRange(rng, size)
		if !ok {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return result{took: time.Since(start), err: errors.New("range not satisfiable")}
		}
		if off != 0 || length != size {
			status = http.StatusPartialContent
		} else {
			length = -1 // the whole object: serve it as a plain 200
		}
	}

	h := w.Header()
	h.Set("Accept-Ranges", "bytes")
	if hasMeta {
		h.Set("ETag", meta.etag())
	}
	want := length
	if want < 0 && size >= 0 {
		want = size - off
	}
	if want >= 0 {
		h.Set("Content-Length", strconv.FormatInt(want, 10))
	}
	if status == http.StatusPartialContent {
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+want-1, size))
	}
	if !body {
		w.WriteHeader(status)
		return result{took: time.Since(start)}
	}
	if want == 0 {
		w.WriteHeader(status)
		return result{took: time.Since(start)}
	}

	if !g.reserve(int64(g.cfg.PipeBuffer)) {
		g.httpError(w, fmt.Errorf("%w: gateway at its in-flight byte cap", dstore.ErrOverloaded))
		return result{took: time.Since(start), err: dstore.ErrOverloaded}
	}
	defer g.release(int64(g.cfg.PipeBuffer))

	n, err := g.streamRange(w, r, key, meta, hasMeta, off, length, status)
	return result{bytes: n, took: time.Since(start), err: err}
}

// streamRange runs the ranged retrieve on the loop, draining the decode
// pipe to the response writer on the handler goroutine. Headers are written
// once the first bytes (or the operation's outcome) arrive, so a retrieve
// that fails outright still reports its real status.
func (g *Gateway) streamRange(w http.ResponseWriter, r *http.Request, key string,
	meta objectMeta, hasMeta bool, off, length int64, status int) (int64, error) {

	ctx := r.Context()
	pipe := newGetPipe(g.cfg.PipeBuffer)
	opts := dstore.GetOptions{Off: off, Length: length, Ready: pipe.ready}
	if hasMeta {
		opts.Meta = &dstore.RangeMeta{DataLen: meta.Size, BlockLen: meta.Block}
	}
	tr := g.trace("http.get", key)
	var h *dstore.Handle
	if !g.call(func() {
		h = g.client.GetRangeAsync(key, pipe, opts, func(n int64, err error) {
			pipe.closeWrite(err)
		})
	}) {
		return 0, errStopped
	}
	// A vanished client must cancel the retrieve even while the decode is
	// paused on backpressure (nothing else would wake it).
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			pipe.kill()
			g.call(func() { h.Cancel() })
		case <-watch:
		}
	}()

	var written int64
	headerSent := false
	buf := make([]byte, 64<<10)
	for {
		n, wake, rerr := pipe.read(buf)
		if n > 0 {
			if !headerSent {
				w.WriteHeader(status)
				headerSent = true
			}
			if _, werr := w.Write(buf[:n]); werr != nil {
				pipe.kill()
				g.call(func() { h.Cancel() })
				g.finishTrace(tr, werr)
				return written, fmt.Errorf("%w: client went away: %v", dstore.ErrCanceled, werr)
			}
			written += int64(n)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		if wake {
			g.call(func() { h.Resume() })
		}
		if rerr != nil {
			err := pipe.err()
			g.finishTrace(tr, err)
			if err != nil {
				if !headerSent {
					g.httpError(w, err)
				}
				return written, err
			}
			if !headerSent {
				w.WriteHeader(status)
			}
			return written, nil
		}
	}
}

// stat resolves one object in the merged inventory through the loop.
func (g *Gateway) stat(ctx context.Context, key string) (dstore.ObjectStat, error) {
	type res struct {
		st  dstore.ObjectStat
		err error
	}
	ch := make(chan res, 1)
	if !g.call(func() {
		g.client.StatAsync(key, func(st dstore.ObjectStat, e error) { ch <- res{st, e} })
	}) {
		return dstore.ObjectStat{}, errStopped
	}
	select {
	case r := <-ch:
		return r.st, r.err
	case <-ctx.Done():
		return dstore.ObjectStat{}, ctx.Err()
	}
}

// ---- DELETE ----

func (g *Gateway) serveDelete(w http.ResponseWriter, r *http.Request, key string) result {
	start := time.Now()
	ctx := r.Context()
	if im := r.Header.Get("If-Match"); im != "" && im != "*" {
		meta, hasMeta, err := g.fetchMeta(ctx, key)
		if err != nil {
			g.httpError(w, err)
			return result{took: time.Since(start), err: err}
		}
		if !hasMeta || !matchETag(im, meta.etag()) {
			http.Error(w, "precondition failed", http.StatusPreconditionFailed)
			return result{took: time.Since(start), err: errors.New("precondition failed")}
		}
	}
	tr := g.trace("http.delete", key)
	unlock := g.lockKey(key)
	err := g.deleteObject(ctx, key)
	if err == nil {
		// Metadata goes second: a half-applied delete leaves the meta
		// record pointing at a missing object, which reads as 404 anyway.
		g.deleteObject(ctx, metaPrefix+key)
	}
	unlock()
	g.finishTrace(tr, err)
	if err != nil && !errors.Is(err, dstore.ErrNotFound) {
		g.httpError(w, err)
		return result{took: time.Since(start), err: err}
	}
	w.WriteHeader(http.StatusNoContent)
	return result{took: time.Since(start)}
}

func (g *Gateway) deleteObject(ctx context.Context, id string) error {
	ch := make(chan error, 1)
	if !g.call(func() {
		g.client.DeleteAsync(id, func(e error) { ch <- e })
	}) {
		return errStopped
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- LIST ----

type listEntry struct {
	Key    string `json:"key"`
	Size   int64  `json:"size"`
	Shards int    `json:"shards"`
}

type listPage struct {
	Objects   []listEntry `json:"objects"`
	Truncated bool        `json:"truncated,omitempty"`
	Next      string      `json:"next,omitempty"`
}

func (g *Gateway) serveList(w http.ResponseWriter, r *http.Request) result {
	start := time.Now()
	ctx := r.Context()
	type res struct {
		objs []dstore.ObjectStat
		err  error
	}
	ch := make(chan res, 1)
	if !g.call(func() {
		g.client.ListAsync(func(o []dstore.ObjectStat, e error) { ch <- res{o, e} })
	}) {
		g.httpError(w, errStopped)
		return result{took: time.Since(start), err: errStopped}
	}
	var objs []dstore.ObjectStat
	select {
	case rr := <-ch:
		if rr.err != nil {
			g.httpError(w, rr.err)
			return result{took: time.Since(start), err: rr.err}
		}
		objs = rr.objs
	case <-ctx.Done():
		return result{took: time.Since(start), err: ctx.Err()}
	}

	max := g.cfg.MaxList
	if s := r.URL.Query().Get("max"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v < max {
			max = v
		}
	}
	after := r.URL.Query().Get("start")
	page := listPage{Objects: []listEntry{}}
	for _, o := range objs {
		if strings.HasPrefix(o.ID, ".") || (after != "" && o.ID <= after) {
			continue // hidden namespace, or before the continuation token
		}
		if len(page.Objects) == max {
			page.Truncated = true
			page.Next = page.Objects[max-1].Key
			break
		}
		page.Objects = append(page.Objects, listEntry{Key: o.ID, Size: o.DataLen, Shards: o.Shards})
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(page)
	w.Write(body)
	return result{bytes: int64(len(body)), took: time.Since(start)}
}

// ---- helpers ----

// trace opens a request span (nil-tolerant, mirroring the client).
func (g *Gateway) trace(op, key string) *telemetry.Trace {
	return g.tracer.Start(op, g.client.Node(), key, time.Now().UnixNano())
}

func (g *Gateway) finishTrace(tr *telemetry.Trace, err error) {
	tr.Finish(time.Now().UnixNano(), err)
}

// matchETag does the strong comparison against a comma-separated If-Match
// list.
func matchETag(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// parseRange interprets a single-range bytes= header against a known size.
// ok=false means unsatisfiable; malformed or multi-range headers are
// reported as the whole object (per RFC 9110 a server may ignore them).
func parseRange(header string, size int64) (off, length int64, ok bool) {
	spec, found := strings.CutPrefix(header, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, size, true
	}
	lo, hi, found := strings.Cut(spec, "-")
	if !found {
		return 0, size, true
	}
	lo, hi = strings.TrimSpace(lo), strings.TrimSpace(hi)
	if lo == "" {
		// Suffix range: the final n bytes.
		n, err := strconv.ParseInt(hi, 10, 64)
		if err != nil || n <= 0 {
			return 0, 0, false
		}
		if n > size {
			n = size
		}
		return size - n, n, true
	}
	start, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || start < 0 {
		return 0, size, true
	}
	if start >= size {
		return 0, 0, size == 0 && start == 0
	}
	if hi == "" {
		return start, size - start, true
	}
	end, err := strconv.ParseInt(hi, 10, 64)
	if err != nil || end < start {
		return 0, 0, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, true
}
