package rudp

import (
	"fmt"
	"testing"
	"time"

	"rain/internal/rt"
)

// startMesh builds a loop+mesh bound to ephemeral loopback ports.
func startMesh(t *testing.T, name string, paths int, peers map[string][]string) (*rt.Loop, *RealMesh) {
	t.Helper()
	loop := rt.New(int64(len(name)) + 7)
	loop.Start()
	locals := make([]string, paths)
	for i := range locals {
		locals[i] = "127.0.0.1:0"
	}
	m, err := NewRealMesh(loop, RealConfig{Name: name, Locals: locals, Peers: peers})
	if err != nil {
		loop.Stop()
		t.Fatalf("mesh %s: %v", name, err)
	}
	return loop, m
}

// Two meshes exchange service datagrams both ways over real sockets,
// including a peer that was only learned from the inbound hello.
func TestRealMeshRoundTrip(t *testing.T) {
	la, a := startMesh(t, "a", 2, nil)
	defer la.Stop()
	defer a.Close()

	// b knows a from its book; a learns b from b's hello.
	lb, b := startMesh(t, "b", 2, map[string][]string{"a": a.LocalAddrs()})
	defer lb.Stop()
	defer b.Close()

	atA := make(chan string, 16)
	atB := make(chan string, 16)
	la.Call(func() {
		a.Handle("a", "echo", func(from string, payload []byte) {
			atA <- from + ":" + string(payload)
			a.SendService("a", from, "echo", append([]byte("re-"), payload...))
		})
	})
	lb.Call(func() {
		b.Handle("b", "echo", func(from string, payload []byte) {
			atB <- from + ":" + string(payload)
		})
	})

	lb.Post(func() { b.SendService("b", "a", "echo", []byte("hi")) })

	want := func(ch chan string, want string) {
		t.Helper()
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("got %q, want %q", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
	want(atA, "b:hi")
	want(atB, "a:re-hi")

	// Loopback delivery works without sockets.
	lb.Post(func() { b.SendService("b", "b", "echo", []byte("self")) })
	want(atB, "b:self")
}

// A restarted peer (same addresses, new incarnation) is detected via the
// hello handshake: the conn pair resets and traffic resumes, and the
// liveness callback reports the outage.
func TestRealMeshPeerRestart(t *testing.T) {
	la, a := startMesh(t, "a", 1, nil)
	defer la.Stop()
	defer a.Close()

	lb, b := startMesh(t, "b", 1, map[string][]string{"a": a.LocalAddrs()})
	bAddrs := b.LocalAddrs()

	atA := make(chan string, 64)
	upDown := make(chan bool, 64)
	la.Call(func() {
		a.Handle("a", "t", func(from string, payload []byte) { atA <- string(payload) })
	})
	a.OnPeerChange(func(name string, up bool) {
		if name == "b" {
			upDown <- up
		}
	})
	lb.Post(func() { b.SendService("b", "a", "t", []byte("one")) })

	recv := func(want string) {
		t.Helper()
		for {
			select {
			case got := <-atA:
				if got == want {
					return
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}
	waitFlip := func(want bool) {
		t.Helper()
		for {
			select {
			case got := <-upDown:
				if got == want {
					return
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timed out waiting for up=%v", want)
			}
		}
	}
	recv("one")
	waitFlip(true)

	// Kill b; a's ping monitors notice the silence.
	b.Close()
	lb.Stop()
	waitFlip(false)

	// Restart b on the same addresses with a fresh incarnation.
	lb2 := rt.New(99)
	lb2.Start()
	defer lb2.Stop()
	b2, err := NewRealMesh(lb2, RealConfig{Name: "b", Locals: bAddrs, Peers: map[string][]string{"a": a.LocalAddrs()}})
	if err != nil {
		t.Fatalf("restart b: %v", err)
	}
	defer b2.Close()
	lb2.Post(func() { b2.SendService("b", "a", "t", []byte("two")) })
	recv("two")
	waitFlip(true)
}

// Sends to an unreachable peer queue up to the backlog cap and are shed
// beyond it instead of growing without bound.
func TestRealMeshBacklogCap(t *testing.T) {
	loop := rt.New(5)
	loop.Start()
	defer loop.Stop()
	m, err := NewRealMesh(loop, RealConfig{
		Name:       "a",
		Locals:     []string{"127.0.0.1:0"},
		Peers:      map[string][]string{"ghost": {"127.0.0.1:9"}}, // discard port
		MaxBacklog: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	loop.Call(func() {
		for i := 0; i < 100; i++ {
			m.SendService("a", "ghost", "t", []byte(fmt.Sprintf("m%d", i)))
		}
		if got := m.Backlog("ghost"); got > 8 {
			t.Errorf("backlog %d exceeds cap 8", got)
		}
	})
}
