package rudp

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"rain/internal/linkstate"
	"rain/internal/sim"
)

func newTestMesh(t *testing.T, nodes []string, loss float64) *Mesh {
	t.Helper()
	s := sim.New(7)
	net := sim.NewNetwork(s)
	for _, a := range nodes {
		for _, b := range nodes {
			if a >= b {
				continue
			}
			for i := 0; i < 2; i++ {
				net.SetLink(sim.NodeAddr(a, i), sim.NodeAddr(b, i),
					sim.LinkConfig{Delay: time.Millisecond, Jitter: 500 * time.Microsecond, Loss: loss})
			}
		}
	}
	m, err := NewMesh(s, net, nodes, Config{Paths: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWireMarshalRoundTrip(t *testing.T) {
	f := func(seq, ack, ps, pe, pt uint64, payload []byte) bool {
		w := Wire{Kind: KindData, Seq: seq, Ack: ack,
			Ping: linkstate.Ping{Seq: ps, Echo: pe, Tokens: pt}, Payload: payload}
		got, err := UnmarshalWire(w.Marshal())
		if err != nil {
			return false
		}
		return got.Kind == w.Kind && got.Seq == w.Seq && got.Ack == w.Ack &&
			got.Ping == w.Ping && bytes.Equal(got.Payload, w.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalWire([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	w := Wire{Kind: KindData, Seq: 1, Payload: []byte("xy")}
	buf := w.Marshal()
	buf[0] = 99 // bad kind
	if _, err := UnmarshalWire(buf); err == nil {
		t.Fatal("bad kind accepted")
	}
	buf = w.Marshal()
	buf = buf[:len(buf)-1] // truncated payload
	if _, err := UnmarshalWire(buf); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindData: "data", KindAck: "ack", KindPing: "ping", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}

func TestReliableInOrderDelivery(t *testing.T) {
	m := newTestMesh(t, []string{"a", "b"}, 0)
	var got []string
	m.OnMessage("b", func(from string, p []byte) { got = append(got, string(p)) })
	for i := 0; i < 100; i++ {
		m.Send("a", "b", []byte(fmt.Sprintf("msg-%03d", i)))
	}
	m.S.RunFor(2 * time.Second)
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("out of order at %d: %s", i, s)
		}
	}
	st := m.Conn("a", "b").Stats()
	if st.Retransmits != 0 {
		t.Fatalf("lossless link needed %d retransmits", st.Retransmits)
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	m := newTestMesh(t, []string{"a", "b"}, 0.25)
	var got []string
	m.OnMessage("b", func(from string, p []byte) { got = append(got, string(p)) })
	for i := 0; i < 200; i++ {
		m.Send("a", "b", []byte(fmt.Sprintf("msg-%03d", i)))
	}
	m.S.RunFor(30 * time.Second)
	if len(got) != 200 {
		t.Fatalf("delivered %d of 200 under 25%% loss", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("out of order at %d: %s (exactly-once violated?)", i, s)
		}
	}
	st := m.Conn("a", "b").Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmits under 25% loss is implausible")
	}
}

func TestBundlingStripesAcrossPaths(t *testing.T) {
	// §2.5: bundled interfaces provide increased bandwidth — fresh traffic
	// must use both paths, not just one.
	m := newTestMesh(t, []string{"a", "b"}, 0)
	m.OnMessage("b", func(string, []byte) {})
	for i := 0; i < 100; i++ {
		m.Send("a", "b", []byte("x"))
	}
	m.S.RunFor(2 * time.Second)
	st := m.Conn("a", "b").Stats()
	if st.PerPathData[0] == 0 || st.PerPathData[1] == 0 {
		t.Fatalf("traffic not striped: per-path %v", st.PerPathData)
	}
	ratio := float64(st.PerPathData[0]) / float64(st.PerPathData[1])
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("striping badly skewed: %v", st.PerPathData)
	}
}

func TestFailoverMasksSingleLinkFailure(t *testing.T) {
	// §2.5: "if all machines have two network adaptors and one link fails,
	// the MPI program will proceed as if nothing had happened."
	m := newTestMesh(t, []string{"a", "b"}, 0)
	delivered := 0
	m.OnMessage("b", func(string, []byte) { delivered++ })

	m.S.RunFor(200 * time.Millisecond) // monitors settle Up
	m.CutPath("a", "b", 0)
	m.S.RunFor(500 * time.Millisecond) // monitors notice

	conn := m.Conn("a", "b")
	if conn.PathStatus(0) != linkstate.Down {
		t.Fatal("path 0 not marked Down after cut")
	}
	if conn.PathStatus(1) != linkstate.Up {
		t.Fatal("path 1 wrongly marked Down")
	}
	for i := 0; i < 50; i++ {
		m.Send("a", "b", []byte("after-cut"))
	}
	m.S.RunFor(2 * time.Second)
	if delivered != 50 {
		t.Fatalf("delivered %d of 50 with one path down", delivered)
	}
	st := conn.Stats()
	if st.PerPathData[1] < 50 {
		t.Fatalf("surviving path carried only %d datagrams", st.PerPathData[1])
	}
}

func TestSecondLinkFailureStallsThenResumes(t *testing.T) {
	// §2.5: "If a second link fails, the MPI application may hang until
	// the link is restored" — RUDP must stall without losing data, then
	// deliver everything after the heal.
	m := newTestMesh(t, []string{"a", "b"}, 0)
	delivered := 0
	m.OnMessage("b", func(string, []byte) { delivered++ })

	m.S.RunFor(200 * time.Millisecond)
	m.CutPath("a", "b", 0)
	m.CutPath("a", "b", 1)
	m.S.RunFor(500 * time.Millisecond)

	for i := 0; i < 20; i++ {
		m.Send("a", "b", []byte("stalled"))
	}
	m.S.RunFor(time.Second)
	if delivered != 0 {
		t.Fatalf("%d datagrams crossed a fully cut channel", delivered)
	}
	if m.Conn("a", "b").UpPaths() != 0 {
		t.Fatal("paths should all be Down")
	}

	m.HealPath("a", "b", 1)
	m.S.RunFor(3 * time.Second)
	if delivered != 20 {
		t.Fatalf("delivered %d of 20 after heal", delivered)
	}
}

func TestRetransmitPrefersOtherPath(t *testing.T) {
	// Cut a path and immediately send, before the monitor notices: the
	// retransmission should fail over to the healthy path.
	m := newTestMesh(t, []string{"a", "b"}, 0)
	delivered := 0
	m.OnMessage("b", func(string, []byte) { delivered++ })
	m.S.RunFor(200 * time.Millisecond)
	m.CutPath("a", "b", 0)
	// Send immediately: roughly half the datagrams head into the dead path.
	for i := 0; i < 10; i++ {
		m.Send("a", "b", []byte("x"))
	}
	m.S.RunFor(2 * time.Second)
	if delivered != 10 {
		t.Fatalf("delivered %d of 10", delivered)
	}
	st := m.Conn("a", "b").Stats()
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions for datagrams lost on the cut path")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	m := newTestMesh(t, []string{"a", "b"}, 0.1)
	gotA, gotB := 0, 0
	m.OnMessage("a", func(string, []byte) { gotA++ })
	m.OnMessage("b", func(string, []byte) { gotB++ })
	for i := 0; i < 50; i++ {
		m.Send("a", "b", []byte("ping"))
		m.Send("b", "a", []byte("pong"))
	}
	m.S.RunFor(10 * time.Second)
	if gotA != 50 || gotB != 50 {
		t.Fatalf("delivered a=%d b=%d, want 50/50", gotA, gotB)
	}
}

func TestMeshThreeNodes(t *testing.T) {
	m := newTestMesh(t, []string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	for _, n := range []string{"a", "b", "c"} {
		n := n
		m.OnMessage(n, func(from string, p []byte) { counts[n+"<-"+from]++ })
	}
	for i := 0; i < 10; i++ {
		m.Send("a", "b", []byte("x"))
		m.Send("b", "c", []byte("x"))
		m.Send("c", "a", []byte("x"))
	}
	m.S.RunFor(2 * time.Second)
	for _, k := range []string{"b<-a", "c<-b", "a<-c"} {
		if counts[k] != 10 {
			t.Fatalf("%s = %d, want 10 (all: %v)", k, counts[k], counts)
		}
	}
}

func TestStopNodeAndRestart(t *testing.T) {
	m := newTestMesh(t, []string{"a", "b"}, 0)
	delivered := 0
	m.OnMessage("b", func(string, []byte) { delivered++ })
	m.S.RunFor(100 * time.Millisecond)
	m.StopNode("b")
	if !m.Stopped("b") {
		t.Fatal("StopNode did not mark node stopped")
	}
	for i := 0; i < 5; i++ {
		m.Send("a", "b", []byte("x"))
	}
	m.S.RunFor(time.Second)
	if delivered != 0 {
		t.Fatal("stopped node received datagrams")
	}
	m.StartNode("b")
	m.S.RunFor(3 * time.Second)
	if delivered != 5 {
		t.Fatalf("delivered %d of 5 after restart", delivered)
	}
}

func TestConnRejectsZeroPaths(t *testing.T) {
	if _, err := NewConn(Config{Paths: -1}, nil, nil); err == nil {
		t.Fatal("negative paths accepted")
	}
}

func TestExactlyOnceUnderDuplication(t *testing.T) {
	// Feed a Conn duplicate data directly: deliver must fire once.
	var out [][]byte
	var sentWires []Wire
	c, err := NewConn(Config{Paths: 1},
		func(path int, w Wire) { sentWires = append(sentWires, w) },
		func(p []byte) { out = append(out, p) })
	if err != nil {
		t.Fatal(err)
	}
	w := Wire{Kind: KindData, Seq: 1, Payload: []byte("once")}
	c.OnWire(0, w, 0)
	c.OnWire(0, w, 1)
	c.OnWire(0, w, 2)
	if len(out) != 1 {
		t.Fatalf("delivered %d times, want 1", len(out))
	}
	st := c.Stats()
	if st.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", st.Duplicates)
	}
	// Duplicates mean the sender retransmitted (an earlier ack was lost), so
	// each must trigger an immediate ack. The initial in-order arrival's ack
	// coalesces and is covered by the first duplicate's flush.
	acks := 0
	for _, sw := range sentWires {
		if sw.Kind == KindAck {
			acks++
			if sw.Ack != 1 {
				t.Fatalf("ack %d, want 1", sw.Ack)
			}
		}
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want 2 (one per duplicate)", acks)
	}
}

func TestOutOfOrderArrivalReordered(t *testing.T) {
	var out []string
	c, err := NewConn(Config{Paths: 1},
		func(int, Wire) {},
		func(p []byte) { out = append(out, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	c.OnWire(0, Wire{Kind: KindData, Seq: 2, Payload: []byte("two")}, 0)
	if len(out) != 0 {
		t.Fatal("out-of-order datagram delivered early")
	}
	c.OnWire(0, Wire{Kind: KindData, Seq: 1, Payload: []byte("one")}, 1)
	if len(out) != 2 || out[0] != "one" || out[1] != "two" {
		t.Fatalf("reordering failed: %v", out)
	}
}
