// Package rudp implements RUDP, the RAIN communication layer of §2.5: a
// reliable datagram protocol over unreliable packet delivery that monitors
// every network path with the consistent-history link protocol and exploits
// bundled interfaces — several NICs per node — for both fault tolerance and
// added bandwidth.
//
// The centrepiece is Conn, a pure state machine for one node pair: a
// sliding-window sender with cumulative acknowledgements, an in-order
// exactly-once receiver, one linkstate.Monitor per path, round-robin
// striping of fresh traffic across Up paths, and retransmission that prefers
// a different live path (fail-over). Like the paper's implementation it
// keeps all protocol state in user space: the driver only moves opaque
// datagrams.
//
// Drivers bind Conns to the discrete-event simulator (Mesh, used by MPI,
// group membership and the applications in tests/experiments) or to real UDP
// sockets (cmd/rainnode).
package rudp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rain/internal/linkstate"
	"rain/internal/netbuf"
)

// Kind discriminates wire messages.
type Kind uint8

// Wire message kinds.
const (
	// KindData carries one application datagram.
	KindData Kind = iota + 1
	// KindAck carries a cumulative acknowledgement.
	KindAck
	// KindPing carries the link-state monitoring protocol.
	KindPing
	// KindHello is the real-mesh dial handshake: Seq carries the sender's
	// incarnation, Ack echoes the incarnation the sender believes the
	// receiver is running, and the payload advertises the sender's name and
	// address bundle. Hellos travel outside any Conn — they are what decides
	// whether a fresh Conn pair is needed (a restarted peer has a new
	// incarnation, and RUDP sequence state never survives a restart).
	KindHello
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindPing:
		return "ping"
	case KindHello:
		return "hello"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Wire is one RUDP datagram. Exactly one of the field groups is meaningful,
// selected by Kind.
type Wire struct {
	Kind    Kind
	Seq     uint64         // KindData: sequence number (1-based)
	Ack     uint64         // KindAck: highest in-order sequence received
	Ping    linkstate.Ping // KindPing
	Payload []byte         // KindData
	// Frame, when non-nil, owns the buffer Payload aliases (and, for frames
	// built by Conn.SendFrame, the already-marshaled wire header in front of
	// it). Drivers use it to transmit without re-marshaling and to manage
	// buffer lifetime; the Wire value itself holds no reference.
	Frame *netbuf.Frame
}

const wireHeader = 1 + 8 + 8 + 8 + 8 + 8 + 4 // kind + seq + ack + ping(3x8) + len

// WireSize returns the datagram's encoded size in bytes, used by the
// simulator's link-capacity model.
func (w Wire) WireSize() int { return wireHeader + len(w.Payload) }

// marshalHeader writes the fixed wire header into buf, which must be at
// least wireHeader bytes.
func (w Wire) marshalHeader(buf []byte) {
	buf[0] = byte(w.Kind)
	binary.BigEndian.PutUint64(buf[1:], w.Seq)
	binary.BigEndian.PutUint64(buf[9:], w.Ack)
	binary.BigEndian.PutUint64(buf[17:], w.Ping.Seq)
	binary.BigEndian.PutUint64(buf[25:], w.Ping.Echo)
	binary.BigEndian.PutUint64(buf[33:], w.Ping.Tokens)
	binary.BigEndian.PutUint32(buf[41:], uint32(len(w.Payload)))
}

// PushHeader marshals w's header into f's headroom, directly below any
// bytes already pushed, so f.Datagram() becomes the complete encoded
// datagram for the frame's current payload — the zero-copy Marshal.
// w.Payload must be f's datagram bytes before the push (its length is
// encoded in the header).
func (w Wire) PushHeader(f *netbuf.Frame) {
	w.marshalHeader(f.Push(wireHeader))
}

// Marshal encodes w for transmission over a byte-oriented transport. The
// simulator passes Wire values directly and skips this; the real-UDP driver
// uses it only for datagrams without a pre-marshaled Frame (acks, pings).
func (w Wire) Marshal() []byte {
	buf := make([]byte, wireHeader+len(w.Payload))
	w.marshalHeader(buf)
	copy(buf[wireHeader:], w.Payload)
	return buf
}

// AppendMarshal appends the encoded datagram to dst and returns the extended
// slice — Marshal without the per-call allocation.
func (w Wire) AppendMarshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, wireHeader+len(w.Payload))...)
	w.marshalHeader(dst[off:])
	copy(dst[off+wireHeader:], w.Payload)
	return dst
}

// ErrBadWire reports a malformed encoded datagram.
var ErrBadWire = errors.New("rudp: malformed wire datagram")

// UnmarshalWire decodes a datagram produced by Marshal. The returned
// Payload aliases buf — it is valid only as long as the caller keeps buf
// alive and unmodified; receivers that retain it longer must copy (or hold a
// reference on the owning frame).
func UnmarshalWire(buf []byte) (Wire, error) {
	if len(buf) < wireHeader {
		return Wire{}, fmt.Errorf("%w: %d bytes", ErrBadWire, len(buf))
	}
	w := Wire{
		Kind: Kind(buf[0]),
		Seq:  binary.BigEndian.Uint64(buf[1:]),
		Ack:  binary.BigEndian.Uint64(buf[9:]),
		Ping: linkstate.Ping{
			Seq:    binary.BigEndian.Uint64(buf[17:]),
			Echo:   binary.BigEndian.Uint64(buf[25:]),
			Tokens: binary.BigEndian.Uint64(buf[33:]),
		},
	}
	n := binary.BigEndian.Uint32(buf[41:])
	if int(n) != len(buf)-wireHeader {
		return Wire{}, fmt.Errorf("%w: payload length %d vs %d", ErrBadWire, n, len(buf)-wireHeader)
	}
	if w.Kind < KindData || w.Kind > KindHello {
		return Wire{}, fmt.Errorf("%w: kind %d", ErrBadWire, w.Kind)
	}
	if n > 0 {
		w.Payload = buf[wireHeader:]
	}
	return w, nil
}
