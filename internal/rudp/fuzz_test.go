package rudp

import (
	"bytes"
	"testing"

	"rain/internal/linkstate"
)

// FuzzUnmarshalWire feeds arbitrary datagrams to the wire decoder: it must
// never panic or over-read, and anything it accepts must re-marshal to the
// identical datagram (the parse is a bijection on valid input).
func FuzzUnmarshalWire(f *testing.F) {
	seeds := []Wire{
		{Kind: KindData, Seq: 1, Payload: []byte("hello shard chunk")},
		{Kind: KindData, Seq: 1<<40 + 17},
		{Kind: KindAck, Ack: 42},
		{Kind: KindPing, Ping: linkstate.Ping{Seq: 7, Echo: 6, Tokens: 3}},
	}
	for _, w := range seeds {
		f.Add(w.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, wireHeader))
	f.Fuzz(func(t *testing.T, buf []byte) {
		w, err := UnmarshalWire(buf)
		if err != nil {
			return
		}
		out := w.Marshal()
		if !bytes.Equal(out, buf) {
			t.Fatalf("accepted datagram does not round-trip: in=%x out=%x", buf, out)
		}
	})
}
