package rudp

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"rain/internal/netbuf"
	"rain/internal/rt"
	"rain/internal/sim"
	"rain/internal/telemetry"
)

// RealConfig parameterises a RealMesh.
type RealConfig struct {
	// Name is the local node's mesh name (how peers address it).
	Name string
	// Locals are the local bind addresses, one per bundled path
	// ("host:port", port 0 for ephemeral). Required, and fixes Conn.Paths.
	Locals []string
	// Advertise overrides the addresses told to peers in hellos; defaults
	// to the resolved bind addresses (right on loopback and flat networks).
	Advertise []string
	// Peers is the static address book: peer name to one address per path.
	// Peers can also be added later with AddPeer, or learned from inbound
	// hellos — the book only has to cover whoever this node dials first.
	Peers map[string][]string
	// Conn parameterises the per-peer connections.
	Conn Config
	// MaxBacklog bounds one peer's queued-plus-unacked datagrams; sends
	// beyond it are dropped like UDP (callers above already tolerate loss
	// via timeouts). Default 4096.
	MaxBacklog int
	// ProbeMin/ProbeMax bound the hello retry backoff while a peer is
	// unreachable. Defaults 50ms / 2s.
	ProbeMin, ProbeMax time.Duration
}

// realPeer is one dialled neighbour: its address bundle, the live Conn pair
// epoch (incarnations on both sides), and datagrams waiting for the
// handshake.
type realPeer struct {
	name  string
	addrs []*net.UDPAddr // per path; nil entries are unknown

	conn     *Conn
	peerInc  uint64 // peer's incarnation, 0 until first hello
	ackedInc uint64 // our incarnation the peer last echoed
	up       bool   // handshaken and at least one path Up

	pending    []*netbuf.Frame // service-framed datagrams awaiting handshake
	probe      sim.Timer
	probeDelay time.Duration
}

// ready reports whether the Conn pair epoch is agreed on both sides: we
// know the peer's incarnation and the peer has echoed ours. Only then may
// data flow — sequence numbers from a previous incarnation must never reach
// a fresh receiver (or vice versa).
func (p *realPeer) ready() bool { return p.conn != nil && p.peerInc != 0 }

// RealMesh is the dial-by-address multi-peer real-UDP driver: the simulated
// Mesh's service demux (Handle/SendService/SendFrame) over one socket per
// bundled path, with a lazily dialled Conn per peer. It runs entirely on an
// rt.Loop — socket read goroutines only parse and post, so all protocol
// state keeps the simulator's single-goroutine discipline and every engine
// built for the simulated mesh (dstore, membership, election) runs on it
// unchanged.
//
// Restarts are handled by incarnation hellos: each process picks a fresh
// incarnation at start, a hello exchange (re)establishes the Conn pair for
// the current epoch on both sides, and traffic from a dead epoch is
// dropped. While a peer is unreachable, hellos retry with exponential
// backoff and sends beyond MaxBacklog are shed.
type RealMesh struct {
	cfg   RealConfig
	loop  *rt.Loop
	s     *sim.Scheduler
	inc   uint64
	socks []*net.UDPConn

	peers    map[string]*realPeer
	byAddr   map[string]*realPeer
	handlers map[string]func(from string, payload []byte)
	onPeer   func(name string, up bool)

	outq       []realPkt
	flushTimer bool
	closed     bool
	done       chan struct{}

	hellosSent *telemetry.Counter
	resets     *telemetry.Counter
	shed       *telemetry.Counter
	peersUp    *telemetry.Gauge
	batchSize  *telemetry.Histogram
}

// realPkt is one staged outgoing datagram with its resolved destination.
type realPkt struct {
	path  int
	addr  *net.UDPAddr
	buf   []byte
	frame *netbuf.Frame
}

// NewRealMesh binds the local sockets and starts the read and tick
// machinery on the loop. The loop must already be running.
func NewRealMesh(loop *rt.Loop, cfg RealConfig) (*RealMesh, error) {
	if cfg.Name == "" {
		return nil, errors.New("rudp: RealConfig.Name required")
	}
	if len(cfg.Locals) == 0 {
		return nil, errors.New("rudp: RealConfig.Locals required")
	}
	cfg.Conn.Paths = len(cfg.Locals)
	cfg.Conn = cfg.Conn.withDefaults()
	if cfg.MaxBacklog == 0 {
		cfg.MaxBacklog = 4096
	}
	if cfg.ProbeMin == 0 {
		cfg.ProbeMin = 50 * time.Millisecond
	}
	if cfg.ProbeMax == 0 {
		cfg.ProbeMax = 2 * time.Second
	}
	scope := cfg.Conn.registry().Root()
	m := &RealMesh{
		cfg:      cfg,
		loop:     loop,
		s:        loop.Scheduler(),
		inc:      uint64(time.Now().UnixNano()),
		peers:    make(map[string]*realPeer),
		byAddr:   make(map[string]*realPeer),
		handlers: make(map[string]func(string, []byte)),
		done:     make(chan struct{}),

		hellosSent: scope.Counter("rudp.mesh.hellos", "dial/probe hellos transmitted"),
		resets:     scope.Counter("rudp.mesh.conn_resets", "per-peer conns reset on a new peer incarnation"),
		shed:       scope.Counter("rudp.mesh.sends_shed", "datagrams dropped at the per-peer backlog cap"),
		peersUp:    scope.Gauge("rudp.mesh.peers_up", "peers with a handshaken conn and a live path"),
		batchSize:  scope.Histogram("rudp.udp.batch_datagrams", "datagrams per coalesced same-path socket batch (sendmmsg)"),
	}
	for _, addr := range cfg.Locals {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			m.closeSocks()
			return nil, fmt.Errorf("rudp: resolving %s: %w", addr, err)
		}
		sock, err := net.ListenUDP("udp", ua)
		if err != nil {
			m.closeSocks()
			return nil, fmt.Errorf("rudp: binding %s: %w", addr, err)
		}
		m.socks = append(m.socks, sock)
	}
	for name, addrs := range cfg.Peers {
		if name == cfg.Name {
			continue
		}
		if err := m.addPeerLocked(name, addrs); err != nil {
			m.closeSocks()
			return nil, err
		}
	}
	for i := range m.socks {
		go m.readLoop(i)
	}
	loop.Post(m.tick)
	return m, nil
}

func (m *RealMesh) closeSocks() {
	for _, s := range m.socks {
		s.Close()
	}
}

// LocalAddrs returns the bound local addresses in path order.
func (m *RealMesh) LocalAddrs() []string {
	out := make([]string, len(m.socks))
	for i, s := range m.socks {
		out[i] = s.LocalAddr().String()
	}
	return out
}

// advertised is the address bundle told to peers in hellos.
func (m *RealMesh) advertised() []string {
	if len(m.cfg.Advertise) > 0 {
		return m.cfg.Advertise
	}
	return m.LocalAddrs()
}

// Name returns the local mesh name.
func (m *RealMesh) Name() string { return m.cfg.Name }

// Close shuts the mesh down: sockets close (read loops exit on
// net.ErrClosed) and peer state is torn down on the loop.
func (m *RealMesh) Close() {
	close(m.done)
	m.closeSocks()
	m.loop.Call(func() {
		m.closed = true
		for _, p := range m.peers {
			p.probe.Stop()
			for _, f := range p.pending {
				f.Release()
			}
			p.pending = nil
		}
		m.releaseOutq()
	})
}

// AddPeer registers (or re-addresses) a peer's address bundle, one address
// per path. Call from any goroutine.
func (m *RealMesh) AddPeer(name string, addrs []string) error {
	var err error
	m.loop.Call(func() { err = m.addPeerLocked(name, addrs) })
	return err
}

func (m *RealMesh) addPeerLocked(name string, addrs []string) error {
	if len(addrs) != len(m.socks) {
		return fmt.Errorf("rudp: peer %s has %d addrs for %d paths", name, len(addrs), len(m.socks))
	}
	resolved := make([]*net.UDPAddr, len(addrs))
	for i, a := range addrs {
		if a == "" {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("rudp: resolving peer %s addr %s: %w", name, a, err)
		}
		resolved[i] = ua
	}
	p := m.peers[name]
	if p == nil {
		p = &realPeer{name: name, probeDelay: m.cfg.ProbeMin}
		m.peers[name] = p
	}
	for _, a := range p.addrs {
		if a != nil {
			delete(m.byAddr, a.String())
		}
	}
	p.addrs = resolved
	for _, a := range resolved {
		if a != nil {
			m.byAddr[a.String()] = p
		}
	}
	return nil
}

// OnPeerChange installs the liveness callback, invoked on the loop whenever
// a peer's up state flips (handshaken with a live path ⇄ not). The
// membership driver uses it to fail deliveries to dead neighbours fast.
func (m *RealMesh) OnPeerChange(fn func(name string, up bool)) {
	m.loop.Call(func() { m.onPeer = fn })
}

// PeerUp reports the current liveness of a peer. Loop-callback use only.
func (m *RealMesh) PeerUp(name string) bool {
	p := m.peers[name]
	return p != nil && p.up
}

// Backlog reports a peer's unacknowledged-plus-pending datagrams. The
// election driver caps its heartbeat fan-out with it. Loop-callback only.
func (m *RealMesh) Backlog(to string) int {
	p := m.peers[to]
	if p == nil {
		return 0
	}
	n := len(p.pending)
	if p.conn != nil {
		n += p.conn.Backlog()
	}
	return n
}

// Handle registers the handler for a service's datagrams, like
// Mesh.Handle. node must be the local name (the signature is shared with
// the simulated mesh so engines run on either). Loop-callback use only at
// runtime; safe before traffic flows.
func (m *RealMesh) Handle(node, service string, fn func(from string, payload []byte)) {
	if node != m.cfg.Name {
		panic(fmt.Sprintf("rudp: Handle(%q) on mesh node %q", node, m.cfg.Name))
	}
	m.handlers[service] = fn
}

// SendService sends one service datagram reliably to a peer. from must be
// the local name. Loop-callback use only.
func (m *RealMesh) SendService(from, to, service string, payload []byte) {
	f := netbuf.NewFrame(len(payload))
	copy(f.Payload(), payload)
	PushService(f, service)
	m.sendFramed(from, to, f)
}

// SendFrame sends a frame's datagram reliably to a peer, consuming the
// caller's reference — the zero-copy SendService. Loop-callback use only.
func (m *RealMesh) SendFrame(from, to, service string, f *netbuf.Frame) {
	PushService(f, service)
	m.sendFramed(from, to, f)
}

// sendFramed routes one service-framed frame: loopback delivers through the
// scheduler (keeping the simulator's no-reentrancy property), unknown peers
// drop, un-handshaken peers queue bounded and dial.
func (m *RealMesh) sendFramed(from, to string, f *netbuf.Frame) {
	if m.closed || from != m.cfg.Name {
		f.Release()
		return
	}
	if to == m.cfg.Name {
		m.s.At(m.s.Now(), func() {
			if service, payload, ok := SplitService(f.Datagram()); ok && !m.closed {
				if h := m.handlers[service]; h != nil {
					h(m.cfg.Name, payload)
				}
			}
			f.Release()
		})
		return
	}
	p := m.peers[to]
	if p == nil {
		f.Release() // not in the book and never heard from: undialable
		return
	}
	if m.Backlog(to) >= m.cfg.MaxBacklog {
		m.shed.Inc()
		f.Release()
		return
	}
	if !p.ready() {
		p.pending = append(p.pending, f)
		m.dial(p) // lazy dial on first traffic
		return
	}
	p.conn.SendFrame(f, int64(m.s.Now()))
	m.armFlush()
}

// dial starts (or continues) the hello handshake toward a peer.
func (m *RealMesh) dial(p *realPeer) {
	if p.probe.Armed() {
		return
	}
	m.sendHello(p)
	p.probeDelay = m.cfg.ProbeMin
	m.armProbe(p)
}

func (m *RealMesh) armProbe(p *realPeer) {
	p.probe.Stop()
	p.probe = m.s.After(p.probeDelay, func() {
		if m.closed || (p.ready() && p.up) {
			return
		}
		m.sendHello(p)
		if p.probeDelay *= 2; p.probeDelay > m.cfg.ProbeMax {
			p.probeDelay = m.cfg.ProbeMax
		}
		m.armProbe(p)
	})
}

// helloPayload advertises the local identity: name length, name, then the
// comma-joined per-path address bundle.
func (m *RealMesh) helloPayload() []byte {
	return FrameService(m.cfg.Name, []byte(strings.Join(m.advertised(), ",")))
}

// sendHello transmits one hello on every path with a known peer address,
// outside any Conn.
func (m *RealMesh) sendHello(p *realPeer) {
	w := Wire{Kind: KindHello, Seq: m.inc, Ack: p.peerInc, Payload: m.helloPayload()}
	buf := w.Marshal()
	for path, addr := range p.addrs {
		if addr == nil || path >= len(m.socks) {
			continue
		}
		m.socks[path].WriteToUDP(buf, addr)
		m.hellosSent.Inc()
	}
}

// onHello processes a handshake datagram: learn/refresh the peer's name and
// addresses, reset the Conn pair when its incarnation changed, and echo
// back until both sides agree on the epoch.
func (m *RealMesh) onHello(path int, src *net.UDPAddr, w Wire) {
	name, addrsCSV, ok := SplitService(w.Payload)
	if !ok || name == "" || name == m.cfg.Name {
		return
	}
	p := m.peers[name]
	if p == nil {
		// A peer we did not have in the book dialled us: learn its bundle.
		addrs := strings.Split(string(addrsCSV), ",")
		if len(addrs) != len(m.socks) {
			return // path-count mismatch: not a mesh we can pair with
		}
		if m.addPeerLocked(name, addrs) != nil {
			return
		}
		p = m.peers[name]
	} else if p.addrs[path] == nil || p.addrs[path].String() != src.String() {
		// Known name, new address (restart with ephemeral ports): re-learn.
		if addrs := strings.Split(string(addrsCSV), ","); len(addrs) == len(m.socks) {
			m.addPeerLocked(name, addrs)
		}
	}

	if w.Seq != p.peerInc {
		// New peer incarnation: its RUDP state is gone, so ours must go
		// too. In-flight data to the dead incarnation is lost — callers
		// see timeouts, exactly as if the datagrams were dropped on the
		// wire.
		if p.conn != nil {
			m.resets.Inc()
		}
		p.peerInc = w.Seq
		p.conn = m.newPeerConn(p)
		m.setUp(p, false)
	}
	if p.conn == nil {
		p.conn = m.newPeerConn(p)
	}
	prevAcked := p.ackedInc
	p.ackedInc = w.Ack
	if w.Ack != m.inc || prevAcked != m.inc {
		// Peer hasn't echoed our incarnation yet (or just did for the
		// first time): answer so both sides converge, then let data flow.
		m.sendHello(p)
	}
	if p.ready() {
		m.flushPending(p)
	}
}

func (m *RealMesh) newPeerConn(p *realPeer) *Conn {
	transmit := func(path int, w Wire) { m.stage(p, path, w) }
	deliver := func(b []byte) {
		if service, payload, ok := SplitService(b); ok {
			if h := m.handlers[service]; h != nil {
				h(p.name, payload)
			}
		}
	}
	conn, err := NewConn(m.cfg.Conn, transmit, deliver)
	if err != nil {
		panic(err) // config was validated at mesh construction
	}
	return conn
}

// flushPending moves datagrams queued during the handshake into the conn.
func (m *RealMesh) flushPending(p *realPeer) {
	if len(p.pending) == 0 {
		return
	}
	now := int64(m.s.Now())
	for _, f := range p.pending {
		p.conn.SendFrame(f, now)
	}
	p.pending = nil
	m.armFlush()
}

// stage queues one outgoing datagram for the batched flush, resolving the
// destination now (the peer's address can move between stage and flush only
// via a hello, which also resets the conn).
func (m *RealMesh) stage(p *realPeer, path int, w Wire) {
	if path >= len(p.addrs) || p.addrs[path] == nil {
		return
	}
	pkt := realPkt{path: path, addr: p.addrs[path]}
	if w.Frame != nil {
		w.Frame.Retain()
		pkt.frame = w.Frame
		pkt.buf = w.Frame.Datagram()
	} else {
		f := netbuf.NewFrame(w.WireSize())
		w.marshalHeader(f.Payload())
		copy(f.Payload()[wireHeader:], w.Payload)
		pkt.frame = f
		pkt.buf = f.Payload()
	}
	m.outq = append(m.outq, pkt)
	m.armFlush()
}

// armFlush schedules one batched socket flush at the current instant: it
// runs right after the event that staged the datagrams, so a whole window
// leaves as one sendmmsg per (path, destination) run.
func (m *RealMesh) armFlush() {
	if m.flushTimer || len(m.outq) == 0 {
		return
	}
	m.flushTimer = true
	m.s.At(m.s.Now(), m.flush)
}

func (m *RealMesh) flush() {
	m.flushTimer = false
	q := m.outq
	m.outq = nil
	if m.closed {
		for i := range q {
			q[i].frame.Release()
		}
		return
	}
	for i := 0; i < len(q); {
		j := i + 1
		for j < len(q) && q[j].path == q[i].path && q[j].addr == q[i].addr {
			j++
		}
		bufs := make([][]byte, 0, j-i)
		for _, p := range q[i:j] {
			bufs = append(bufs, p.buf)
		}
		sendBatch(m.socks[q[i].path], q[i].addr, bufs)
		m.batchSize.Observe(int64(j - i))
		i = j
	}
	for i := range q {
		q[i].frame.Release()
		q[i] = realPkt{}
	}
}

func (m *RealMesh) releaseOutq() {
	for i := range m.outq {
		m.outq[i].frame.Release()
	}
	m.outq = nil
}

// tick drives every peer conn's timers and liveness at half the ping
// interval, the same cadence as the point-to-point UDP driver.
func (m *RealMesh) tick() {
	if m.closed {
		return
	}
	now := int64(m.s.Now())
	for _, p := range m.peers {
		if p.conn == nil || !p.ready() {
			continue
		}
		p.conn.Tick(now)
		up := p.conn.UpPaths() > 0
		if up != p.up {
			m.setUp(p, up)
			if !up {
				// Peer went quiet: could be a partition or a restart.
				// Probe hellos resolve which (a restart answers with a
				// new incarnation and the conn pair resets).
				p.probeDelay = m.cfg.ProbeMin
				m.armProbe(p)
			}
		}
	}
	m.armFlush()
	m.s.After(m.cfg.Conn.PingInterval/2, m.tick)
}

func (m *RealMesh) setUp(p *realPeer, up bool) {
	if p.up == up {
		return
	}
	p.up = up
	if up {
		m.peersUp.Add(1)
	} else {
		m.peersUp.Add(-1)
	}
	if m.onPeer != nil {
		m.onPeer(p.name, up)
	}
}

// readLoop receives on one path's socket, parses off-loop, and posts the
// protocol work to the loop — the only goroutine that touches mesh state.
func (m *RealMesh) readLoop(path int) {
	for {
		f := netbuf.NewFrame(maxDatagram)
		sz, src, err := m.socks[path].ReadFromUDP(f.Payload())
		if err != nil {
			f.Release()
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-m.done:
				return
			default:
			}
			continue
		}
		w, err := UnmarshalWire(f.Payload()[:sz])
		if err != nil {
			f.Release()
			continue
		}
		w.Frame = f
		m.loop.Post(func() {
			m.onDatagram(path, src, w)
			f.Release()
		})
	}
}

func (m *RealMesh) onDatagram(path int, src *net.UDPAddr, w Wire) {
	if m.closed {
		return
	}
	if w.Kind == KindHello {
		m.onHello(path, src, w)
		m.armFlush()
		return
	}
	p := m.byAddr[src.String()]
	if p == nil || p.conn == nil || !p.ready() {
		return // traffic from an unknown peer or a dead conn epoch
	}
	p.conn.OnWire(path, w, int64(m.s.Now()))
	if !p.up && p.conn.UpPaths() > 0 {
		m.setUp(p, true)
	}
	m.armFlush()
}
