package rudp

import (
	"bytes"
	"testing"
	"time"
)

func TestServiceFrameRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		service string
		payload []byte
	}{
		{"", nil},
		{"", []byte("x")},
		{"dstore", []byte("hello")},
		{"a.very.long.service.name", bytes.Repeat([]byte{0xAB}, 4096)},
	} {
		framed := FrameService(tc.service, tc.payload)
		svc, payload, ok := SplitService(framed)
		if !ok || svc != tc.service || !bytes.Equal(payload, tc.payload) {
			t.Fatalf("roundtrip %q: svc=%q ok=%v", tc.service, svc, ok)
		}
	}
	if _, _, ok := SplitService(nil); ok {
		t.Fatal("empty frame accepted")
	}
	if _, _, ok := SplitService([]byte{200, 'x'}); ok {
		t.Fatal("truncated frame accepted")
	}
}

// TestMeshServiceDemux checks that per-service handlers on one node are
// isolated from each other and from the default service, and that datagrams
// to unregistered services are dropped rather than misdelivered.
func TestMeshServiceDemux(t *testing.T) {
	m := newTestMesh(t, []string{"A", "B"}, 0)
	var gotDefault, gotAlpha, gotBeta []string
	m.OnMessage("B", func(from string, p []byte) { gotDefault = append(gotDefault, string(p)) })
	m.Handle("B", "alpha", func(from string, p []byte) { gotAlpha = append(gotAlpha, string(p)) })
	m.Handle("B", "beta", func(from string, p []byte) { gotBeta = append(gotBeta, string(p)) })

	m.Send("A", "B", []byte("d1"))
	m.SendService("A", "B", "alpha", []byte("a1"))
	m.SendService("A", "B", "beta", []byte("b1"))
	m.SendService("A", "B", "alpha", []byte("a2"))
	m.SendService("A", "B", "ghost", []byte("lost"))
	m.S.RunFor(time.Second)

	if len(gotDefault) != 1 || gotDefault[0] != "d1" {
		t.Fatalf("default service got %v", gotDefault)
	}
	if len(gotAlpha) != 2 || gotAlpha[0] != "a1" || gotAlpha[1] != "a2" {
		t.Fatalf("alpha service got %v", gotAlpha)
	}
	if len(gotBeta) != 1 || gotBeta[0] != "b1" {
		t.Fatalf("beta service got %v", gotBeta)
	}
}

// TestMeshLoopback checks that a node can address services on itself: the
// datagram skips the network and arrives on a later scheduler event, never
// reentrantly.
func TestMeshLoopback(t *testing.T) {
	m := newTestMesh(t, []string{"A", "B"}, 0)
	var got []string
	reentrant := false
	sending := true
	m.Handle("A", "svc", func(from string, p []byte) {
		if sending {
			reentrant = true
		}
		got = append(got, from+":"+string(p))
	})
	m.SendService("A", "A", "svc", []byte("self"))
	sending = false
	m.S.RunFor(100 * time.Millisecond)
	if reentrant {
		t.Fatal("loopback delivered reentrantly")
	}
	if len(got) != 1 || got[0] != "A:self" {
		t.Fatalf("loopback got %v", got)
	}
	// Loopback to a stopped node is dropped, like any other delivery.
	m.StopNode("A")
	m.SendService("A", "A", "svc", []byte("dead"))
	m.S.RunFor(100 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("stopped-node loopback delivered: %v", got)
	}
}
