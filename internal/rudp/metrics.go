package rudp

import "rain/internal/telemetry"

// connMetrics are the registry series a Conn reports into. In the simulated
// mesh every Conn of one node shares the node's series (per-conn series
// would be N² cardinality); the real-UDP driver uses the unlabeled root
// scope. All handles are created at construction, so the families export
// even at zero.
type connMetrics struct {
	sent          *telemetry.Counter
	retransmits   *telemetry.Counter
	delivered     *telemetry.Counter
	duplicates    *telemetry.Counter
	acksSent      *telemetry.Counter
	acksCoalesced *telemetry.Counter
	failovers     *telemetry.Counter
	rtt           *telemetry.Histogram
}

func newConnMetrics(s *telemetry.Scope) *connMetrics {
	return &connMetrics{
		sent:          s.Counter("rudp.conn.sent", "datagrams first transmitted"),
		retransmits:   s.Counter("rudp.conn.retransmits", "datagram retransmissions"),
		delivered:     s.Counter("rudp.conn.delivered", "datagrams delivered in order"),
		duplicates:    s.Counter("rudp.conn.duplicates", "duplicate data arrivals"),
		acksSent:      s.Counter("rudp.conn.acks_sent", "cumulative acks transmitted"),
		acksCoalesced: s.Counter("rudp.conn.acks_coalesced", "in-order arrivals whose ack was deferred"),
		failovers:     s.Counter("rudp.conn.failover_sends", "retransmissions that switched paths"),
		rtt:           s.Histogram("rudp.conn.rtt_ns", "ack round-trip time of never-retransmitted datagrams"),
	}
}

// registry resolves the configured registry, defaulting to the process-wide
// one.
func (c Config) registry() *telemetry.Registry {
	if c.Telemetry != nil {
		return c.Telemetry
	}
	return telemetry.Default()
}
