package rudp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// udpPair builds two connected UDPNodes on loopback ephemeral ports and
// returns mutex-guarded snapshots of what each side received.
func udpPair(t *testing.T, paths int) (a, b *UDPNode, gotA, gotB func() []string) {
	t.Helper()
	locals := make([]string, paths)
	for i := range locals {
		locals[i] = "127.0.0.1:0"
	}
	var muA, muB sync.Mutex
	var recvA, recvB []string
	cfg := Config{PingInterval: 5 * time.Millisecond, PingTimeout: 20 * time.Millisecond, RTO: 20 * time.Millisecond}
	a, err := NewUDPNode(locals, cfg, func(p []byte) {
		muA.Lock()
		recvA = append(recvA, string(p))
		muA.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewUDPNode(locals, cfg, func(p []byte) {
		muB.Lock()
		recvB = append(recvB, string(p))
		muB.Unlock()
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	if err := a.Connect(b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	gotA = func() []string {
		muA.Lock()
		defer muA.Unlock()
		return append([]string(nil), recvA...)
	}
	gotB = func() []string {
		muB.Lock()
		defer muB.Unlock()
		return append([]string(nil), recvB...)
	}
	return a, b, gotA, gotB
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestUDPLoopbackDelivery exercises the protocol over real sockets: the
// same state machine the simulator drives, running in user space over
// kernel UDP (§2.5).
func TestUDPLoopbackDelivery(t *testing.T) {
	a, _, _, gotB := udpPair(t, 2)
	for i := 0; i < 50; i++ {
		a.Send([]byte(fmt.Sprintf("m%02d", i)))
	}
	ok := waitFor(t, 5*time.Second, func() bool { return a.Backlog() == 0 && len(gotB()) == 50 })
	if !ok {
		t.Fatalf("delivered %d of 50 over loopback UDP", len(gotB()))
	}
	for i, s := range gotB() {
		if s != fmt.Sprintf("m%02d", i) {
			t.Fatalf("out of order at %d: %s", i, s)
		}
	}
}

func TestUDPBidirectional(t *testing.T) {
	a, b, gotA, gotB := udpPair(t, 2)
	for i := 0; i < 20; i++ {
		a.Send([]byte("from-a"))
		b.Send([]byte("from-b"))
	}
	ok := waitFor(t, 5*time.Second, func() bool { return len(gotA()) == 20 && len(gotB()) == 20 })
	if !ok {
		t.Fatalf("a got %d, b got %d, want 20/20", len(gotA()), len(gotB()))
	}
}

func TestUDPPathsComeUp(t *testing.T) {
	a, _, _, _ := udpPair(t, 2)
	ok := waitFor(t, 2*time.Second, func() bool {
		return a.PathStatus(0) == "Up" && a.PathStatus(1) == "Up"
	})
	if !ok {
		t.Fatalf("paths not Up: %s / %s", a.PathStatus(0), a.PathStatus(1))
	}
	st := a.Stats()
	if st.Delivered != 0 {
		t.Fatalf("unexpected deliveries: %+v", st)
	}
}

func TestUDPNodeValidation(t *testing.T) {
	if _, err := NewUDPNode(nil, Config{}, nil); err == nil {
		t.Fatal("empty locals accepted")
	}
	n, err := NewUDPNode([]string{"127.0.0.1:0"}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect([]string{"127.0.0.1:1", "127.0.0.1:2"}); err == nil {
		t.Fatal("mismatched remote count accepted")
	}
	if _, err := NewUDPNode([]string{"not-an-addr"}, Config{}, nil); err == nil {
		t.Fatal("bad local address accepted")
	}
}
