package rudp

import (
	"fmt"

	"rain/internal/sim"
)

// envelope is the simulator's wire format: the Wire plus the sender's node
// name for demultiplexing at the receiver.
type envelope struct {
	From string
	W    Wire
}

// Mesh wires a full mesh of RUDP connections between simulated nodes, each
// pair joined by cfg.Paths independent paths (node X's NIC i talks to node
// Y's NIC i, the bundled-interface layout of the paper's testbed). It is the
// communication substrate the simulated MPI jobs, membership rings and
// applications run on.
type Mesh struct {
	S     *sim.Scheduler
	Net   *sim.Network
	Nodes []string
	Paths int

	cfg      Config
	conns    map[string]map[string]*Conn
	handlers map[string]func(from string, payload []byte)
	stopped  map[string]bool
}

// NewMesh builds the mesh and starts per-node tick loops on the scheduler.
func NewMesh(s *sim.Scheduler, net *sim.Network, nodes []string, cfg Config) (*Mesh, error) {
	cfg = cfg.withDefaults()
	m := &Mesh{
		S:        s,
		Net:      net,
		Nodes:    append([]string(nil), nodes...),
		Paths:    cfg.Paths,
		cfg:      cfg,
		conns:    make(map[string]map[string]*Conn),
		handlers: make(map[string]func(string, []byte)),
		stopped:  make(map[string]bool),
	}
	for _, a := range nodes {
		m.conns[a] = make(map[string]*Conn)
		for _, b := range nodes {
			if a == b {
				continue
			}
			a, b := a, b
			conn, err := NewConn(cfg,
				func(path int, w Wire) { m.transmit(a, b, path, w) },
				func(payload []byte) {
					if h := m.handlers[a]; h != nil {
						h(b, payload)
					}
				})
			if err != nil {
				return nil, err
			}
			m.conns[a][b] = conn
		}
	}
	for _, a := range nodes {
		for i := 0; i < m.Paths; i++ {
			addr := sim.NodeAddr(a, i)
			a, i := a, i
			net.Attach(addr, func(p sim.Packet) { m.onPacket(a, i, p) })
		}
	}
	for _, a := range nodes {
		a := a
		var loop func()
		loop = func() {
			if !m.stopped[a] {
				now := int64(s.Now())
				for _, c := range m.conns[a] {
					c.Tick(now)
				}
			}
			s.After(cfg.PingInterval/2, loop)
		}
		s.After(0, loop)
	}
	return m, nil
}

func (m *Mesh) transmit(from, to string, path int, w Wire) {
	if m.stopped[from] {
		return
	}
	m.Net.SendSized(sim.NodeAddr(from, path), sim.NodeAddr(to, path), envelope{From: from, W: w}, w.WireSize())
}

func (m *Mesh) onPacket(node string, path int, p sim.Packet) {
	if m.stopped[node] {
		return
	}
	env := p.Payload.(envelope)
	conn, ok := m.conns[node][env.From]
	if !ok {
		return
	}
	conn.OnWire(path, env.W, int64(m.S.Now()))
}

// OnMessage registers the application handler for datagrams delivered to a
// node (from any peer).
func (m *Mesh) OnMessage(node string, fn func(from string, payload []byte)) {
	m.handlers[node] = fn
}

// Send queues a reliable datagram from one node to another.
func (m *Mesh) Send(from, to string, payload []byte) {
	conn, ok := m.conns[from][to]
	if !ok {
		panic(fmt.Sprintf("rudp: no conn %s->%s", from, to))
	}
	conn.Send(payload, int64(m.S.Now()))
}

// Conn exposes the connection state machine from node a toward node b,
// for tests and experiments inspecting path status and stats.
func (m *Mesh) Conn(a, b string) *Conn { return m.conns[a][b] }

// CutPath severs path i between two nodes in both directions.
func (m *Mesh) CutPath(a, b string, path int) {
	m.Net.Cut(sim.NodeAddr(a, path), sim.NodeAddr(b, path))
}

// HealPath restores path i between two nodes.
func (m *Mesh) HealPath(a, b string, path int) {
	m.Net.Heal(sim.NodeAddr(a, path), sim.NodeAddr(b, path))
}

// StopNode freezes a node: it stops ticking, transmitting and receiving —
// the simulator's process crash. The network links are also cut so
// in-flight traffic dies.
func (m *Mesh) StopNode(node string) {
	m.stopped[node] = true
	m.Net.CutNode(node)
}

// StartNode revives a stopped node and heals its links. Connection state
// machines retain their sequence numbers, modelling a process that was
// paused rather than restarted; full crash-restart semantics are the
// business of the membership layer above.
func (m *Mesh) StartNode(node string) {
	m.stopped[node] = false
	m.Net.HealNode(node)
}

// Stopped reports whether a node is currently stopped.
func (m *Mesh) Stopped(node string) bool { return m.stopped[node] }
