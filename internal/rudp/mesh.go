package rudp

import (
	"fmt"

	"rain/internal/netbuf"
	"rain/internal/sim"
)

// envelope is the simulator's wire format: the Wire plus the sender's node
// name for demultiplexing at the receiver.
type envelope struct {
	From string
	W    Wire
}

// Mesh wires a full mesh of RUDP connections between simulated nodes, each
// pair joined by cfg.Paths independent paths (node X's NIC i talks to node
// Y's NIC i, the bundled-interface layout of the paper's testbed). It is the
// communication substrate the simulated MPI jobs, membership rings and
// applications run on.
//
// Datagrams are demultiplexed per service: several protocol engines (MPI,
// the distributed store daemon, the store client) can share one node's
// connections, each registering its own handler with Handle and addressing
// peers with SendService. OnMessage/Send are the unnamed default service.
type Mesh struct {
	S     *sim.Scheduler
	Net   *sim.Network
	Nodes []string
	Paths int

	cfg      Config
	conns    map[string]map[string]*Conn
	handlers map[string]map[string]func(from string, payload []byte)
	stopped  map[string]bool
	addrs    map[string][]sim.Addr // memoized NodeAddr per node × path
}

// addr returns the memoized NIC address for a node and path.
func (m *Mesh) addr(node string, path int) sim.Addr {
	if a, ok := m.addrs[node]; ok && path < len(a) {
		return a[path]
	}
	return sim.NodeAddr(node, path)
}

// NewMesh builds the mesh and starts per-node tick loops on the scheduler.
func NewMesh(s *sim.Scheduler, net *sim.Network, nodes []string, cfg Config) (*Mesh, error) {
	cfg = cfg.withDefaults()
	m := &Mesh{
		S:        s,
		Net:      net,
		Nodes:    append([]string(nil), nodes...),
		Paths:    cfg.Paths,
		cfg:      cfg,
		conns:    make(map[string]map[string]*Conn),
		handlers: make(map[string]map[string]func(string, []byte)),
		stopped:  make(map[string]bool),
		addrs:    make(map[string][]sim.Addr),
	}
	for _, a := range nodes {
		nics := make([]sim.Addr, cfg.Paths)
		for i := range nics {
			nics[i] = sim.NodeAddr(a, i)
		}
		m.addrs[a] = nics
	}
	reg := cfg.registry()
	for _, a := range nodes {
		m.conns[a] = make(map[string]*Conn)
		// All of one node's conns share the node's telemetry series —
		// per-conn series would be N² cardinality for no insight.
		scope := reg.Node(a)
		for _, b := range nodes {
			if a == b {
				continue
			}
			a, b := a, b
			conn, err := newConn(cfg, scope,
				func(path int, w Wire) { m.transmit(a, b, path, w) },
				func(payload []byte) { m.dispatch(a, b, payload) })
			if err != nil {
				return nil, err
			}
			m.conns[a][b] = conn
		}
	}
	for _, a := range nodes {
		for i := 0; i < m.Paths; i++ {
			addr := sim.NodeAddr(a, i)
			a, i := a, i
			net.Attach(addr, func(p sim.Packet) { m.onPacket(a, i, p) })
		}
	}
	for _, a := range nodes {
		a := a
		var loop func()
		loop = func() {
			if !m.stopped[a] {
				now := int64(s.Now())
				for _, c := range m.conns[a] {
					c.Tick(now)
				}
			}
			s.After(cfg.PingInterval/2, loop)
		}
		s.After(0, loop)
	}
	return m, nil
}

func (m *Mesh) transmit(from, to string, path int, w Wire) {
	if m.stopped[from] {
		return
	}
	// The in-flight packet aliases the sender's frame (no copy); hold a
	// reference until the network delivers or drops it, so an ack that
	// releases the sender's queue cannot recycle the buffer under a
	// still-travelling duplicate.
	var done func()
	if w.Frame != nil {
		w.Frame.Retain()
		done = w.Frame.Release
	}
	m.Net.SendSizedDone(m.addr(from, path), m.addr(to, path), envelope{From: from, W: w}, w.WireSize(), done)
}

func (m *Mesh) onPacket(node string, path int, p sim.Packet) {
	if m.stopped[node] {
		return
	}
	env := p.Payload.(envelope)
	conn, ok := m.conns[node][env.From]
	if !ok {
		return
	}
	conn.OnWire(path, env.W, int64(m.S.Now()))
}

// FrameService prefixes a payload with its service name (1-byte length +
// name); the receiver strips the frame with SplitService and routes to the
// service's handler. The default service "" costs one byte. Shared by the
// simulated mesh and real-socket drivers speaking the same multiplexing.
func FrameService(service string, payload []byte) []byte {
	if len(service) > 255 {
		panic(fmt.Sprintf("rudp: service name %q too long", service))
	}
	buf := make([]byte, 1+len(service)+len(payload))
	buf[0] = byte(len(service))
	copy(buf[1:], service)
	copy(buf[1+len(service):], payload)
	return buf
}

// PushService prepends the service frame into a frame's headroom — the
// zero-copy FrameService. The service name must leave room for the wire
// header that Conn.SendFrame pushes below it.
func PushService(f *netbuf.Frame, service string) {
	if 1+len(service)+wireHeader > netbuf.Headroom-f.Pushed() {
		panic(fmt.Sprintf("rudp: service name %q does not fit the frame headroom", service))
	}
	hdr := f.Push(1 + len(service))
	hdr[0] = byte(len(service))
	copy(hdr[1:], service)
}

// SplitService undoes FrameService. ok is false for malformed frames.
func SplitService(framed []byte) (service string, payload []byte, ok bool) {
	if len(framed) < 1 {
		return "", nil, false
	}
	n := int(framed[0])
	if len(framed) < 1+n {
		return "", nil, false
	}
	return string(framed[1 : 1+n]), framed[1+n:], true
}

// dispatch strips the service frame and routes the datagram to the handler
// registered for (node, service). Unknown services are dropped silently,
// like UDP ports nobody listens on.
func (m *Mesh) dispatch(node, from string, framed []byte) {
	service, payload, ok := SplitService(framed)
	if !ok {
		return
	}
	if h := m.handlers[node][service]; h != nil {
		h(from, payload)
	}
}

// Handle registers the handler for datagrams addressed to a service on a
// node (from any peer), replacing any previous handler for that service.
func (m *Mesh) Handle(node, service string, fn func(from string, payload []byte)) {
	hs, ok := m.handlers[node]
	if !ok {
		hs = make(map[string]func(string, []byte))
		m.handlers[node] = hs
	}
	hs[service] = fn
}

// OnMessage registers the handler for the default service on a node.
func (m *Mesh) OnMessage(node string, fn func(from string, payload []byte)) {
	m.Handle(node, "", fn)
}

// SendService queues a reliable datagram from one node to another, addressed
// to the named service on the receiver. A node may send to itself: loopback
// datagrams skip the network and deliver on the next scheduler event. The
// payload is copied; senders that build datagrams in frames use SendFrame.
func (m *Mesh) SendService(from, to, service string, payload []byte) {
	f := netbuf.NewFrame(len(payload))
	copy(f.Payload(), payload)
	m.SendFrame(from, to, service, f)
}

// SendFrame queues a reliable datagram whose bytes live in f's payload
// region, consuming the caller's frame reference — the zero-copy
// SendService. The service header is pushed into the frame's headroom and
// the framed bytes travel by reference all the way through the connection's
// retransmit queue and the simulated network.
func (m *Mesh) SendFrame(from, to, service string, f *netbuf.Frame) {
	PushService(f, service)
	if from == to {
		framed := f.Datagram()
		m.S.After(0, func() {
			if !m.stopped[from] {
				m.dispatch(from, from, framed)
			}
			f.Release()
		})
		return
	}
	conn, ok := m.conns[from][to]
	if !ok {
		panic(fmt.Sprintf("rudp: no conn %s->%s", from, to))
	}
	conn.SendFrame(f, int64(m.S.Now()))
}

// Send queues a reliable datagram from one node to another on the default
// service.
func (m *Mesh) Send(from, to string, payload []byte) {
	m.SendService(from, to, "", payload)
}

// Conn exposes the connection state machine from node a toward node b,
// for tests and experiments inspecting path status and stats.
func (m *Mesh) Conn(a, b string) *Conn { return m.conns[a][b] }

// CutPath severs path i between two nodes in both directions.
func (m *Mesh) CutPath(a, b string, path int) {
	m.Net.Cut(sim.NodeAddr(a, path), sim.NodeAddr(b, path))
}

// HealPath restores path i between two nodes.
func (m *Mesh) HealPath(a, b string, path int) {
	m.Net.Heal(sim.NodeAddr(a, path), sim.NodeAddr(b, path))
}

// StopNode freezes a node: it stops ticking, transmitting and receiving —
// the simulator's process crash. The network links are also cut so
// in-flight traffic dies.
func (m *Mesh) StopNode(node string) {
	m.stopped[node] = true
	m.Net.CutNode(node)
}

// StartNode revives a stopped node and heals its links. Connection state
// machines retain their sequence numbers, modelling a process that was
// paused rather than restarted; full crash-restart semantics are the
// business of the membership layer above.
func (m *Mesh) StartNode(node string) {
	m.stopped[node] = false
	m.Net.HealNode(node)
}

// Stopped reports whether a node is currently stopped.
func (m *Mesh) Stopped(node string) bool { return m.stopped[node] }
