//go:build !linux || !(amd64 || arm64)

package rudp

import "net"

// sendBatch transmits a run of datagrams to one destination. The portable
// implementation writes them one by one; Linux batches with sendmmsg(2).
// Send errors are ignored (UDP semantics: dead peers surface as silence to
// the link monitor).
func sendBatch(sock *net.UDPConn, addr *net.UDPAddr, bufs [][]byte) {
	for _, b := range bufs {
		sock.WriteToUDP(b, addr)
	}
}
