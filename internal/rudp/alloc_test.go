package rudp

import (
	"testing"

	"rain/internal/netbuf"
	"rain/internal/telemetry"
)

// TestConnSendReceiveAllocs pins the instrumented hot path: a steady-state
// send → deliver → ack round trip over a Conn pair — pooled frame, wire
// header push, telemetry counters, RTT observation, pending-record reuse —
// allocates nothing.
func TestConnSendReceiveAllocs(t *testing.T) {
	type item struct {
		path int
		w    Wire
		to   *Conn
	}
	var queue []item
	var a, b *Conn
	cfg := Config{Paths: 1, Telemetry: telemetry.NewRegistry()}
	var err error
	// a's datagrams go to b, b's (acks) go back to a. Wires are queued and
	// drained after the call returns, like a driver, so ack processing never
	// re-enters a pump in progress.
	a, err = NewConn(cfg,
		func(path int, w Wire) { queue = append(queue, item{path, w, b}) },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewConn(cfg,
		func(path int, w Wire) { queue = append(queue, item{path, w, a}) },
		func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}

	var now int64
	drain := func() {
		for i := 0; i < len(queue); i++ {
			it := queue[i]
			queue[i] = item{}
			it.to.OnWire(it.path, it.w, now)
		}
		queue = queue[:0]
	}
	roundTrip := func() {
		// ackEvery in-order arrivals coalesce into one flushed ack, so a
		// full ack cycle is the natural steady-state unit.
		for i := 0; i < ackEvery; i++ {
			now += 1000
			f := netbuf.NewFrame(64)
			copy(f.Payload(), "zero-alloc instrumented send path payload bytes")
			a.SendFrame(f, now)
			drain()
		}
		if a.Backlog() != 0 {
			t.Fatal("backlog after ack cycle")
		}
	}

	for i := 0; i < 16; i++ { // warm pools, queue capacity, pending freelist
		roundTrip()
	}
	if n := testing.AllocsPerRun(200, roundTrip); n != 0 {
		t.Fatalf("instrumented send/receive allocated %.2f per ack cycle, want 0", n)
	}

	st := a.Stats()
	if st.Sent == 0 || st.Retransmits != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	// The clean round trips above must all have produced RTT samples.
	snap := cfg.Telemetry.Snapshot()
	for _, f := range snap.Families {
		if f.Name == "rudp.conn.rtt_ns" {
			if f.Series[0].Histogram.Count != st.Sent {
				t.Fatalf("rtt samples %d, want %d", f.Series[0].Histogram.Count, st.Sent)
			}
			return
		}
	}
	t.Fatal("rtt histogram family missing")
}
