package rudp

import (
	"fmt"
	"sync/atomic"
	"time"

	"rain/internal/linkstate"
	"rain/internal/netbuf"
	"rain/internal/telemetry"
)

// Config parameterises a Conn. Zero fields take the defaults below.
type Config struct {
	// Paths is the number of independent network paths (bundled interface
	// pairs) between the two nodes. Default 2, the paper's testbed layout.
	Paths int
	// Window is the maximum number of unacknowledged datagrams in flight.
	Window int
	// RTO is the retransmission timeout for unacknowledged datagrams.
	RTO time.Duration
	// PingInterval and PingTimeout drive the per-path link monitors.
	PingInterval, PingTimeout time.Duration
	// Slack is the link-state protocol slack N (default 2).
	Slack int
	// Telemetry is the metrics registry connections report into; nil means
	// the process-wide telemetry.Default(). The simulated mesh labels series
	// per node; standalone endpoints use the unlabeled root scope.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Paths == 0 {
		c.Paths = 2
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.RTO == 0 {
		c.RTO = 40 * time.Millisecond
	}
	if c.PingInterval == 0 {
		c.PingInterval = 10 * time.Millisecond
	}
	if c.PingTimeout == 0 {
		c.PingTimeout = 35 * time.Millisecond
	}
	if c.Slack == 0 {
		c.Slack = 2
	}
	return c
}

// Stats counts a Conn's activity; all values are cumulative.
type Stats struct {
	Sent          uint64 // datagrams first transmitted
	Retransmits   uint64
	Delivered     uint64 // datagrams handed to the application, in order
	Duplicates    uint64 // data arrivals below the receive cursor
	AcksSent      uint64
	PerPathData   []uint64 // data transmissions (incl. retransmits) per path
	FailoverSends uint64   // retransmissions that switched paths
}

// ackEvery bounds receive-side ack coalescing: one cumulative ack per this
// many in-order data arrivals on the fast path, with any residue flushed by
// the next Tick (well inside the sender's RTO) and gaps, duplicates and
// window-edge arrivals acked immediately.
const ackEvery = 4

type pending struct {
	seq      uint64
	payload  []byte        // the application datagram (service-framed bytes)
	frame    *netbuf.Frame // owns payload (and the pushed wire header); one queue ref
	lastSent int64
	lastPath int
	sent     bool
	resent   bool // retransmitted at least once: its ack is no RTT sample
}

// recvSlot is one buffered out-of-order datagram; the slot holds a frame
// reference so pooled sender/reader buffers stay alive until delivery.
type recvSlot struct {
	payload []byte
	frame   *netbuf.Frame
}

// Conn is the RUDP endpoint state machine for traffic from one local node
// to one remote node (one direction of data, both directions of pings and
// acks). It is pure: drivers feed OnWire and Tick with a monotonic
// nanosecond clock and implement the transmit callback. Not safe for
// concurrent use — drive from one goroutine or the simulator.
type Conn struct {
	cfg      Config
	transmit func(path int, w Wire)
	deliver  func([]byte)

	monitors []*linkstate.Monitor
	lastPing []int64

	nextSeq  uint64 // next sequence to assign (1-based)
	sendBase uint64 // lowest unacknowledged sequence
	queue    []*pending
	rr       int // round-robin cursor over up paths

	recvNext uint64 // next in-order sequence expected
	recvBuf  map[uint64]recvSlot

	// Receive-side ack coalescing state: in-order arrivals since the last
	// ack, and the path the next flushed ack should use.
	unacked int
	ackPath int
	ackOwed bool

	// pfree recycles pending records freed by acks so the steady-state send
	// path allocates nothing.
	pfree []*pending

	stats connCounters
	met   *connMetrics
}

// connCounters are the per-connection counts backing the Stats view. They
// are atomics so snapshots never tear, and per-conn (unlike the shared
// registry series) so existing callers keep per-connection semantics.
type connCounters struct {
	sent          atomic.Uint64
	retransmits   atomic.Uint64
	delivered     atomic.Uint64
	duplicates    atomic.Uint64
	acksSent      atomic.Uint64
	failoverSends atomic.Uint64
	perPathData   []atomic.Uint64
}

// NewConn builds a connection endpoint. transmit sends a wire datagram on a
// path (unreliably); deliver receives application datagrams exactly once, in
// order.
func NewConn(cfg Config, transmit func(path int, w Wire), deliver func([]byte)) (*Conn, error) {
	return newConn(cfg, nil, transmit, deliver)
}

// newConn builds a connection reporting into the given telemetry scope (nil
// means the configured registry's root scope). The mesh passes per-node
// scopes so one process full of simulated nodes keeps distinct series.
func newConn(cfg Config, scope *telemetry.Scope, transmit func(path int, w Wire), deliver func([]byte)) (*Conn, error) {
	cfg = cfg.withDefaults()
	if scope == nil {
		scope = cfg.registry().Root()
	}
	if cfg.Paths < 1 {
		return nil, fmt.Errorf("rudp: need at least one path, got %d", cfg.Paths)
	}
	c := &Conn{
		cfg:      cfg,
		transmit: transmit,
		deliver:  deliver,
		monitors: make([]*linkstate.Monitor, cfg.Paths),
		lastPing: make([]int64, cfg.Paths),
		nextSeq:  1,
		sendBase: 1,
		recvNext: 1,
		recvBuf:  make(map[uint64]recvSlot),
	}
	for i := range c.monitors {
		ep, err := linkstate.NewEndpoint(cfg.Slack, linkstate.TinExplicit)
		if err != nil {
			return nil, err
		}
		c.monitors[i] = linkstate.NewMonitor(ep, cfg.PingInterval, cfg.PingTimeout)
		c.lastPing[i] = -int64(cfg.PingInterval) // ping immediately on first tick
	}
	c.stats.perPathData = make([]atomic.Uint64, cfg.Paths)
	c.met = newConnMetrics(scope)
	return c, nil
}

// PathStatus reports the link-state view of path i.
func (c *Conn) PathStatus(i int) linkstate.Status { return c.monitors[i].Status() }

// UpPaths counts paths currently seen Up.
func (c *Conn) UpPaths() int {
	n := 0
	for _, m := range c.monitors {
		if m.Status() == linkstate.Up {
			n++
		}
	}
	return n
}

// Stats returns a snapshot view of the connection counters. The counts are
// atomics (and mirrored into the telemetry registry), so the snapshot is
// safe to take from any goroutine.
func (c *Conn) Stats() Stats {
	s := Stats{
		Sent:          c.stats.sent.Load(),
		Retransmits:   c.stats.retransmits.Load(),
		Delivered:     c.stats.delivered.Load(),
		Duplicates:    c.stats.duplicates.Load(),
		AcksSent:      c.stats.acksSent.Load(),
		FailoverSends: c.stats.failoverSends.Load(),
		PerPathData:   make([]uint64, len(c.stats.perPathData)),
	}
	for i := range c.stats.perPathData {
		s.PerPathData[i] = c.stats.perPathData[i].Load()
	}
	return s
}

// Backlog reports datagrams queued or in flight but not yet acknowledged.
func (c *Conn) Backlog() int { return len(c.queue) }

// Send queues one datagram for reliable delivery and attempts immediate
// transmission. The queue is unbounded; when every path is down the data
// waits, exactly the paper's MPI-over-RUDP behaviour ("the application may
// hang until the link is restored"). The payload is copied (into a pooled
// frame); callers that build their datagrams in frames use SendFrame to skip
// the copy.
func (c *Conn) Send(payload []byte, now int64) {
	f := netbuf.NewFrame(len(payload))
	copy(f.Payload(), payload)
	c.SendFrame(f, now)
}

// SendFrame queues the frame's current datagram bytes (payload plus any
// service header the caller pushed) for reliable delivery, taking ownership
// of the caller's frame reference. The wire header is marshaled once into
// the frame's headroom, so retransmissions re-send the same bytes without
// re-marshaling, and byte-oriented drivers write the frame directly.
func (c *Conn) SendFrame(f *netbuf.Frame, now int64) {
	payload := f.Datagram()
	var p *pending
	if n := len(c.pfree); n > 0 {
		p = c.pfree[n-1]
		c.pfree[n-1] = nil
		c.pfree = c.pfree[:n-1]
		*p = pending{seq: c.nextSeq, payload: payload, frame: f}
	} else {
		p = &pending{seq: c.nextSeq, payload: payload, frame: f}
	}
	c.nextSeq++
	Wire{Kind: KindData, Seq: p.seq, Payload: payload}.PushHeader(f)
	c.queue = append(c.queue, p)
	c.pump(now)
}

// pickPath returns the next Up path in round-robin order, an arbitrary path
// if none are Up (pings must still flow), and whether any path was Up.
func (c *Conn) pickPath() (int, bool) {
	for off := 0; off < c.cfg.Paths; off++ {
		i := (c.rr + off) % c.cfg.Paths
		if c.monitors[i].Status() == linkstate.Up {
			c.rr = (i + 1) % c.cfg.Paths
			return i, true
		}
	}
	return c.rr, false
}

// pump transmits queued datagrams while the window has room and a path is
// up.
func (c *Conn) pump(now int64) {
	inFlightLimit := c.cfg.Window
	for _, p := range c.queue {
		if p.seq >= c.sendBase+uint64(inFlightLimit) {
			break
		}
		if p.sent {
			continue
		}
		path, up := c.pickPath()
		if !up {
			break
		}
		p.sent = true
		p.lastSent = now
		p.lastPath = path
		c.stats.sent.Add(1)
		c.stats.perPathData[path].Add(1)
		c.met.sent.Inc()
		c.transmit(path, Wire{Kind: KindData, Seq: p.seq, Payload: p.payload, Frame: p.frame})
	}
}

// Tick drives timers: per-path pings and retransmission of datagrams older
// than the RTO. Call it at least every PingInterval.
func (c *Conn) Tick(now int64) {
	for i, m := range c.monitors {
		if now-c.lastPing[i] >= int64(c.cfg.PingInterval) {
			c.lastPing[i] = now
			c.transmit(i, Wire{Kind: KindPing, Ping: m.Tick(now)})
		}
	}
	for _, p := range c.queue {
		if !p.sent || now-p.lastSent < int64(c.cfg.RTO) {
			continue
		}
		path, up := c.pickPath()
		if !up {
			// Leave it marked sent; it will be retried when a path
			// comes back (Tick keeps firing).
			continue
		}
		if path != p.lastPath {
			c.stats.failoverSends.Add(1)
			c.met.failovers.Inc()
		}
		p.lastSent = now
		p.lastPath = path
		p.resent = true
		c.stats.retransmits.Add(1)
		c.stats.perPathData[path].Add(1)
		c.met.retransmits.Inc()
		c.transmit(path, Wire{Kind: KindData, Seq: p.seq, Payload: p.payload, Frame: p.frame})
	}
	if c.ackOwed {
		c.flushAck(c.ackPath)
	}
	c.pump(now)
}

// flushAck transmits the current cumulative acknowledgement and resets the
// coalescing state.
func (c *Conn) flushAck(path int) {
	c.unacked = 0
	c.ackOwed = false
	c.stats.acksSent.Add(1)
	c.met.acksSent.Inc()
	c.transmit(path, Wire{Kind: KindAck, Ack: c.recvNext - 1})
}

// OnWire processes a datagram received on path i. Data payloads (and any
// frame backing them) are borrowed: they are either handed to deliver before
// OnWire returns or retained via w.Frame while buffered out of order.
func (c *Conn) OnWire(path int, w Wire, now int64) {
	switch w.Kind {
	case KindPing:
		if extra := c.monitors[path].OnPing(w.Ping, now); extra != nil {
			c.transmit(path, Wire{Kind: KindPing, Ping: *extra})
		}
		// A path recovering may unblock queued data.
		c.pump(now)
	case KindData:
		fresh := false
		if w.Seq < c.recvNext {
			c.stats.duplicates.Add(1)
			c.met.duplicates.Inc()
		} else if _, dup := c.recvBuf[w.Seq]; dup {
			c.stats.duplicates.Add(1)
			c.met.duplicates.Inc()
		} else {
			fresh = true
			if w.Frame != nil {
				w.Frame.Retain()
			}
			c.recvBuf[w.Seq] = recvSlot{payload: w.Payload, frame: w.Frame}
			for {
				slot, ok := c.recvBuf[c.recvNext]
				if !ok {
					break
				}
				delete(c.recvBuf, c.recvNext)
				c.recvNext++
				c.stats.delivered.Add(1)
				c.met.delivered.Inc()
				if c.deliver != nil {
					c.deliver(slot.payload)
				}
				if slot.frame != nil {
					slot.frame.Release()
				}
			}
		}
		// Ack immediately on anything unusual — duplicates (the sender
		// retransmitted, so an earlier ack was lost), gaps (out-of-order
		// buffering), and every ackEvery-th in-order arrival; coalesce the
		// rest, with Tick as the flush backstop.
		c.unacked++
		c.ackPath = path
		if !fresh || len(c.recvBuf) > 0 || c.unacked >= ackEvery {
			c.flushAck(path)
		} else {
			c.ackOwed = true
			c.met.acksCoalesced.Inc()
		}
	case KindAck:
		if w.Ack+1 <= c.sendBase {
			return
		}
		newBase := w.Ack + 1
		keep := c.queue[:0]
		for _, p := range c.queue {
			if p.seq >= newBase {
				keep = append(keep, p)
				continue
			}
			// A clean (never-retransmitted) ack is an unambiguous RTT
			// sample; retransmitted datagrams are skipped, per Karn.
			if p.sent && !p.resent {
				c.met.rtt.Observe(now - p.lastSent)
			}
			// Acknowledged: drop the queue's frame reference so the pooled
			// buffer can be reused once any in-flight copies drain, and
			// recycle the pending record for future sends.
			if p.frame != nil {
				p.frame.Release()
			}
			*p = pending{}
			c.pfree = append(c.pfree, p)
		}
		// Zero the tail so released datagrams can be collected.
		for i := len(keep); i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = keep
		c.sendBase = newBase
		c.pump(now)
	}
}
