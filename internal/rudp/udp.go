package rudp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPNode drives a Conn over real UDP sockets, one socket per bundled path —
// the deployment the paper ran on its testbed. Like the original RUDP it
// keeps every piece of protocol state in user space: the kernel is used only
// for unreliable packet delivery (§2.5), which is what made transparent
// checkpointing of communicating processes possible.
//
// Lifecycle: NewUDPNode binds the local sockets; Connect supplies the remote
// addresses and starts the receive and timer loops; Close stops them.
type UDPNode struct {
	cfg   Config
	socks []*net.UDPConn

	mu      sync.Mutex // serialises access to the Conn state machine
	conn    *Conn
	remotes []*net.UDPAddr
	start   time.Time

	deliver func([]byte)
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewUDPNode binds one UDP socket per local address ("host:port", port 0
// for ephemeral). deliver receives datagrams exactly once, in order.
func NewUDPNode(locals []string, cfg Config, deliver func([]byte)) (*UDPNode, error) {
	if len(locals) == 0 {
		return nil, fmt.Errorf("rudp: need at least one local address")
	}
	cfg.Paths = len(locals)
	n := &UDPNode{cfg: cfg.withDefaults(), deliver: deliver, done: make(chan struct{}), start: time.Now()}
	for _, addr := range locals {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			n.closeSocks()
			return nil, fmt.Errorf("rudp: resolving %s: %w", addr, err)
		}
		sock, err := net.ListenUDP("udp", ua)
		if err != nil {
			n.closeSocks()
			return nil, fmt.Errorf("rudp: binding %s: %w", addr, err)
		}
		n.socks = append(n.socks, sock)
	}
	return n, nil
}

func (n *UDPNode) closeSocks() {
	for _, s := range n.socks {
		s.Close()
	}
}

// LocalAddrs returns the bound local addresses, in path order.
func (n *UDPNode) LocalAddrs() []string {
	out := make([]string, len(n.socks))
	for i, s := range n.socks {
		out[i] = s.LocalAddr().String()
	}
	return out
}

// now returns nanoseconds since the node started (a monotonic clock for the
// protocol engine).
func (n *UDPNode) now() int64 { return int64(time.Since(n.start)) }

// Connect supplies the peer's addresses (one per path, matching the local
// path order) and starts the protocol loops.
func (n *UDPNode) Connect(remotes []string) error {
	if len(remotes) != len(n.socks) {
		return fmt.Errorf("rudp: %d remote addrs for %d paths", len(remotes), len(n.socks))
	}
	for _, addr := range remotes {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("rudp: resolving %s: %w", addr, err)
		}
		n.remotes = append(n.remotes, ua)
	}
	conn, err := NewConn(n.cfg, n.transmit, n.deliver)
	if err != nil {
		return err
	}
	n.conn = conn
	for i := range n.socks {
		n.wg.Add(1)
		go n.readLoop(i)
	}
	n.wg.Add(1)
	go n.tickLoop()
	return nil
}

// transmit runs with n.mu held (all Conn entry points lock it).
func (n *UDPNode) transmit(path int, w Wire) {
	// Socket writes never block meaningfully for UDP; errors (e.g. peer
	// gone) surface as silence, which the link monitor translates into
	// Down — exactly the fault model the protocol expects.
	_, _ = n.socks[path].WriteToUDP(w.Marshal(), n.remotes[path])
}

func (n *UDPNode) readLoop(path int) {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		_ = n.socks[path].SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		sz, _, err := n.socks[path].ReadFromUDP(buf)
		select {
		case <-n.done:
			return
		default:
		}
		if err != nil {
			continue // deadline or transient error: keep listening
		}
		w, err := UnmarshalWire(buf[:sz])
		if err != nil {
			continue // garbage datagram: drop, as UDP would
		}
		n.mu.Lock()
		n.conn.OnWire(path, w, n.now())
		n.mu.Unlock()
	}
}

func (n *UDPNode) tickLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.PingInterval / 2)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.mu.Lock()
			n.conn.Tick(n.now())
			n.mu.Unlock()
		}
	}
}

// Send queues one datagram for reliable delivery to the peer.
func (n *UDPNode) Send(payload []byte) {
	n.mu.Lock()
	n.conn.Send(payload, n.now())
	n.mu.Unlock()
}

// PathStatus reports the link-state view of path i.
func (n *UDPNode) PathStatus(i int) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.PathStatus(i).String()
}

// Stats returns a snapshot of the connection counters.
func (n *UDPNode) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Stats()
}

// Backlog reports unacknowledged datagrams.
func (n *UDPNode) Backlog() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Backlog()
}

// Close stops the loops and closes the sockets.
func (n *UDPNode) Close() {
	close(n.done)
	n.closeSocks()
	n.wg.Wait()
}
