package rudp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rain/internal/netbuf"
	"rain/internal/telemetry"
)

// maxDatagram bounds one received UDP datagram (64 KiB, the protocol
// maximum).
const maxDatagram = 64 * 1024

// UDPNode drives a Conn over real UDP sockets, one socket per bundled path —
// the deployment the paper ran on its testbed. Like the original RUDP it
// keeps every piece of protocol state in user space: the kernel is used only
// for unreliable packet delivery (§2.5), which is what made transparent
// checkpointing of communicating processes possible.
//
// Socket writes never happen under the connection lock: every entry point
// runs the state machine with mu held, which stages outgoing datagrams on
// outq, then unlocks and flushes the staged batch — so a slow or blocking
// send on one path never stalls the read loops' OnWire delivery, and a whole
// window of datagrams reaches the socket layer as one batch (one sendmmsg
// syscall per path on Linux).
//
// Lifecycle: NewUDPNode binds the local sockets; Connect supplies the remote
// addresses and starts the receive and timer loops; Close stops them by
// closing the sockets (the read loops exit on net.ErrClosed — no deadline
// polling).
type UDPNode struct {
	cfg   Config
	socks []*net.UDPConn

	mu      sync.Mutex // serialises access to the Conn state machine
	conn    *Conn
	remotes []*net.UDPAddr
	start   time.Time
	outq    []outPkt // staged under mu, written after unlock

	deliver func([]byte)
	done    chan struct{}
	wg      sync.WaitGroup

	batchSize *telemetry.Histogram // datagrams coalesced per socket batch
}

// outPkt is one staged outgoing datagram: marshaled bytes plus the frame
// reference (if any) that keeps them alive until the socket write returns.
type outPkt struct {
	path  int
	buf   []byte
	frame *netbuf.Frame
}

// NewUDPNode binds one UDP socket per local address ("host:port", port 0
// for ephemeral). deliver receives datagrams exactly once, in order; the
// payload aliases a pooled receive buffer and is only valid until deliver
// returns — retainers must copy.
func NewUDPNode(locals []string, cfg Config, deliver func([]byte)) (*UDPNode, error) {
	if len(locals) == 0 {
		return nil, fmt.Errorf("rudp: need at least one local address")
	}
	cfg.Paths = len(locals)
	n := &UDPNode{cfg: cfg.withDefaults(), deliver: deliver, done: make(chan struct{}), start: time.Now()}
	n.batchSize = n.cfg.registry().Root().Histogram(
		"rudp.udp.batch_datagrams", "datagrams per coalesced same-path socket batch (sendmmsg)")
	for _, addr := range locals {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			n.closeSocks()
			return nil, fmt.Errorf("rudp: resolving %s: %w", addr, err)
		}
		sock, err := net.ListenUDP("udp", ua)
		if err != nil {
			n.closeSocks()
			return nil, fmt.Errorf("rudp: binding %s: %w", addr, err)
		}
		n.socks = append(n.socks, sock)
	}
	return n, nil
}

func (n *UDPNode) closeSocks() {
	for _, s := range n.socks {
		s.Close()
	}
}

// LocalAddrs returns the bound local addresses, in path order.
func (n *UDPNode) LocalAddrs() []string {
	out := make([]string, len(n.socks))
	for i, s := range n.socks {
		out[i] = s.LocalAddr().String()
	}
	return out
}

// now returns nanoseconds since the node started (a monotonic clock for the
// protocol engine).
func (n *UDPNode) now() int64 { return int64(time.Since(n.start)) }

// Connect supplies the peer's addresses (one per path, matching the local
// path order) and starts the protocol loops.
func (n *UDPNode) Connect(remotes []string) error {
	if len(remotes) != len(n.socks) {
		return fmt.Errorf("rudp: %d remote addrs for %d paths", len(remotes), len(n.socks))
	}
	for _, addr := range remotes {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("rudp: resolving %s: %w", addr, err)
		}
		n.remotes = append(n.remotes, ua)
	}
	conn, err := NewConn(n.cfg, n.transmit, n.deliver)
	if err != nil {
		return err
	}
	n.conn = conn
	for i := range n.socks {
		n.wg.Add(1)
		go n.readLoop(i)
	}
	n.wg.Add(1)
	go n.tickLoop()
	return nil
}

// transmit runs with n.mu held (all Conn entry points lock it). It only
// stages the datagram; the entry point flushes the batch after unlocking, so
// the kernel send path is never entered under the lock.
func (n *UDPNode) transmit(path int, w Wire) {
	p := outPkt{path: path}
	if w.Frame != nil {
		// The frame already carries the marshaled datagram (wire header
		// pushed by SendFrame). Hold a reference until the write completes:
		// an ack processed before the flush could otherwise recycle it.
		w.Frame.Retain()
		p.frame = w.Frame
		p.buf = w.Frame.Datagram()
	} else {
		// Control datagrams (acks, pings) marshal into a small pooled frame.
		f := netbuf.NewFrame(w.WireSize())
		w.marshalHeader(f.Payload())
		copy(f.Payload()[wireHeader:], w.Payload)
		p.frame = f
		p.buf = f.Payload()
	}
	n.outq = append(n.outq, p)
}

// takeBatch hands the staged datagrams to the caller; runs with n.mu held.
func (n *UDPNode) takeBatch() []outPkt {
	q := n.outq
	n.outq = nil
	return q
}

// writeBatch flushes staged datagrams outside the lock, coalescing runs of
// same-path packets into one batched socket call. Socket errors (e.g. peer
// gone) surface as silence, which the link monitor translates into Down —
// exactly the fault model the protocol expects.
func (n *UDPNode) writeBatch(q []outPkt) {
	for i := 0; i < len(q); {
		j := i + 1
		for j < len(q) && q[j].path == q[i].path {
			j++
		}
		bufs := make([][]byte, 0, j-i)
		for _, p := range q[i:j] {
			bufs = append(bufs, p.buf)
		}
		sendBatch(n.socks[q[i].path], n.remotes[q[i].path], bufs)
		n.batchSize.Observe(int64(j - i))
		i = j
	}
	for i := range q {
		if q[i].frame != nil {
			q[i].frame.Release()
		}
		q[i] = outPkt{}
	}
}

func (n *UDPNode) readLoop(path int) {
	defer n.wg.Done()
	for {
		f := netbuf.NewFrame(maxDatagram)
		sz, _, err := n.socks[path].ReadFromUDP(f.Payload())
		if err != nil {
			f.Release()
			if errors.Is(err, net.ErrClosed) {
				return // Close closed the socket: shut down
			}
			select {
			case <-n.done:
				return
			default:
			}
			continue // transient error: keep listening
		}
		w, err := UnmarshalWire(f.Payload()[:sz])
		if err != nil {
			f.Release()
			continue // garbage datagram: drop, as UDP would
		}
		w.Frame = f
		n.mu.Lock()
		n.conn.OnWire(path, w, n.now())
		q := n.takeBatch()
		n.mu.Unlock()
		n.writeBatch(q)
		f.Release()
	}
}

func (n *UDPNode) tickLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.PingInterval / 2)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.mu.Lock()
			n.conn.Tick(n.now())
			q := n.takeBatch()
			n.mu.Unlock()
			n.writeBatch(q)
		}
	}
}

// Send queues one datagram for reliable delivery to the peer.
func (n *UDPNode) Send(payload []byte) {
	n.mu.Lock()
	n.conn.Send(payload, n.now())
	q := n.takeBatch()
	n.mu.Unlock()
	n.writeBatch(q)
}

// SendFrame queues a framed datagram for reliable delivery, consuming the
// caller's frame reference — the zero-copy Send.
func (n *UDPNode) SendFrame(f *netbuf.Frame) {
	n.mu.Lock()
	n.conn.SendFrame(f, n.now())
	q := n.takeBatch()
	n.mu.Unlock()
	n.writeBatch(q)
}

// PathStatus reports the link-state view of path i.
func (n *UDPNode) PathStatus(i int) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.PathStatus(i).String()
}

// Stats returns a snapshot of the connection counters.
func (n *UDPNode) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Stats()
}

// Backlog reports unacknowledged datagrams.
func (n *UDPNode) Backlog() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Backlog()
}

// Close stops the loops and closes the sockets; the read loops wake with
// net.ErrClosed and exit.
func (n *UDPNode) Close() {
	close(n.done)
	n.closeSocks()
	n.wg.Wait()
}
