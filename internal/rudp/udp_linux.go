//go:build linux && (amd64 || arm64)

package rudp

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// sysSendmmsg is the sendmmsg(2) syscall number; the stdlib's frozen syscall
// tables predate it on amd64.
var sysSendmmsg = map[string]uintptr{"amd64": 307, "arm64": 269}[runtime.GOARCH]

// sendBatch transmits a run of datagrams to one destination with a single
// sendmmsg(2) per syscall round — the writev-style batched socket write of
// the zero-copy pipeline. Any failure falls back to per-datagram writes;
// send errors are deliberately ignored (UDP semantics: the link monitor
// detects dead peers through silence).
func sendBatch(sock *net.UDPConn, addr *net.UDPAddr, bufs [][]byte) {
	if len(bufs) == 1 {
		sock.WriteToUDP(bufs[0], addr)
		return
	}
	rc, err := sock.SyscallConn()
	if err != nil {
		sendBatchFallback(sock, addr, bufs)
		return
	}
	sa, salen, ok := rawSockaddr(addr)
	if !ok {
		sendBatchFallback(sock, addr, bufs)
		return
	}
	iovs := make([]syscall.Iovec, len(bufs))
	msgs := make([]mmsghdr, len(bufs))
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
		msgs[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
		msgs[i].hdr.Namelen = salen
		msgs[i].hdr.Iov = &iovs[i]
		msgs[i].hdr.Iovlen = 1 // uint64 on amd64/arm64, matching the build tags
	}
	sent := 0
	werr := rc.Write(func(fd uintptr) bool {
		for sent < len(msgs) {
			n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&msgs[sent])), uintptr(len(msgs)-sent), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, then retry
			}
			if errno != 0 {
				return true // give up; fallback below resends the rest
			}
			sent += int(n)
		}
		return true
	})
	runtime.KeepAlive(bufs)
	runtime.KeepAlive(iovs)
	if werr != nil || sent < len(msgs) {
		for _, b := range bufs[sent:] {
			sock.WriteToUDP(b, addr)
		}
	}
}

// mmsghdr mirrors struct mmsghdr from sendmmsg(2).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// rawSockaddr encodes a UDP address as the raw sockaddr sendmmsg expects.
// The returned pointer references memory the caller must keep alive across
// the syscall (it does, via the msgs slice).
func rawSockaddr(addr *net.UDPAddr) (unsafe.Pointer, uint32, bool) {
	if ip4 := addr.IP.To4(); ip4 != nil {
		sa := &syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		sa.Port = uint16(addr.Port>>8) | uint16(addr.Port&0xff)<<8
		copy(sa.Addr[:], ip4)
		return unsafe.Pointer(sa), syscall.SizeofSockaddrInet4, true
	}
	if ip6 := addr.IP.To16(); ip6 != nil {
		sa := &syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		sa.Port = uint16(addr.Port>>8) | uint16(addr.Port&0xff)<<8
		copy(sa.Addr[:], ip6)
		return unsafe.Pointer(sa), syscall.SizeofSockaddrInet6, true
	}
	return nil, 0, false
}

func sendBatchFallback(sock *net.UDPConn, addr *net.UDPAddr, bufs [][]byte) {
	for _, b := range bufs {
		sock.WriteToUDP(b, addr)
	}
}
