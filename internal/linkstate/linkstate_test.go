package linkstate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newEp(t *testing.T, slack int, mode Mode) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint(slack, mode)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestNewEndpointRejectsSlackBelowTwo(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if _, err := NewEndpoint(n, TinExplicit); err == nil {
			t.Fatalf("slack %d accepted", n)
		}
	}
}

// TestFig7StateMachine walks the exact 5-state N=2 machine of Fig 7,
// checking status and token count in every state (experiment E5).
func TestFig7StateMachine(t *testing.T) {
	ep := newEp(t, 2, TinOnToken)

	check := func(label string, st Status, tokens int) {
		t.Helper()
		if ep.Status() != st || ep.TokensHeld() != tokens {
			t.Fatalf("%s: status %v tokens %d, want %v %d", label, ep.Status(), ep.TokensHeld(), st, tokens)
		}
	}

	check("initial (state 1)", Up, 2)

	// Up(2) --tout/send--> Down(1)  (state 3)
	if ep.Tout() != 1 {
		t.Fatal("tout from Up(2) must send a token")
	}
	check("after tout (state 3)", Down, 1)

	// Down(1) --T/send--> Up(1)  (state 4): ack + implicit tin.
	if ep.Token() != 1 {
		t.Fatal("token in Down(1) must trigger the Up transition and send")
	}
	check("after token (state 4)", Up, 1)

	// Up(1) --tout/send--> Down(0)  (state 5): now blocked.
	if ep.Tout() != 1 {
		t.Fatal("tout from Up(1) must send a token")
	}
	check("after second tout (state 5)", Down, 0)

	// Down(0): further touts are absorbed (bounded slack).
	if ep.Tout() != 0 {
		t.Fatal("tout in Down(0) must be blocked by the slack bound")
	}
	check("blocked (state 5)", Down, 0)

	// Down(0) --T/0--> Down(1)  (state 3): ack only, no transition yet.
	if ep.Token() != 0 {
		t.Fatal("token in Down(0) must only acknowledge")
	}
	check("after token (state 3)", Down, 1)

	// Down(1) --T/send--> Up(1) --T/0--> Up(2): fully recovered.
	if ep.Token() != 1 {
		t.Fatal("token in Down(1) must come back up")
	}
	check("state 4 again", Up, 1)
	if ep.Token() != 0 {
		t.Fatal("ack token in Up(1) must not send")
	}
	check("stable again (state 1)", Up, 2)
}

// TestFig7CatchUp checks the catch-up path: a token arriving in the stable
// state mirrors the peer's transition (state 1 -> state 2 -> state 1).
func TestFig7CatchUp(t *testing.T) {
	ep := newEp(t, 2, TinOnToken)
	if ep.Token() != 1 {
		t.Fatal("catch-up transition must send a token")
	}
	if ep.Status() != Down || ep.TokensHeld() != 2 {
		t.Fatalf("state 2: got %v t=%d, want Down t=2", ep.Status(), ep.TokensHeld())
	}
	// Peer comes back up; we mirror again.
	if ep.Token() != 1 {
		t.Fatal("mirroring the Up transition must send a token")
	}
	if ep.Status() != Up || ep.TokensHeld() != 2 {
		t.Fatalf("back to state 1: got %v t=%d", ep.Status(), ep.TokensHeld())
	}
}

func TestExplicitTinMachine(t *testing.T) {
	ep := newEp(t, 4, TinExplicit)
	// Go down, come up via explicit tin, repeatedly until blocked.
	sent := 0
	for i := 0; i < 10; i++ {
		if ep.Status() == Up {
			sent += ep.Tout()
		} else {
			sent += ep.Tin()
		}
	}
	if sent != 4 {
		t.Fatalf("emitted %d tokens before blocking, want slack=4", sent)
	}
	if ep.TokensHeld() != 0 {
		t.Fatalf("tokens held %d, want 0", ep.TokensHeld())
	}
	// Acks restore budget without transitions in explicit mode.
	before := ep.Transitions()
	if ep.Token() != 0 {
		t.Fatal("ack must not send in explicit mode")
	}
	if ep.Transitions() != before {
		t.Fatal("ack must not transition in explicit mode")
	}
	if ep.TokensHeld() != 1 {
		t.Fatalf("tokens held %d after one ack, want 1", ep.TokensHeld())
	}
}

func TestTinIgnoredWhenUpAndInTokenMode(t *testing.T) {
	ep := newEp(t, 2, TinOnToken)
	if ep.Tin() != 0 {
		t.Fatal("tin in TinOnToken mode must be ignored")
	}
	ep2 := newEp(t, 2, TinExplicit)
	if ep2.Tin() != 0 {
		t.Fatal("tin while Up must be ignored")
	}
}

// channelSim runs two endpoints over reliable in-order token queues with an
// adversarial random schedule and verifies the paper's three properties.
type channelSim struct {
	a, b     *Endpoint
	qAB, qBA []int // queued token counts in flight
	histA    []Status
	histB    []Status
}

func newChannelSim(t *testing.T, slack int, mode Mode) *channelSim {
	cs := &channelSim{a: newEp(t, slack, mode), b: newEp(t, slack, mode)}
	cs.a.OnTransition(func(s Status) { cs.histA = append(cs.histA, s) })
	cs.b.OnTransition(func(s Status) { cs.histB = append(cs.histB, s) })
	return cs
}

func (cs *channelSim) step(rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0:
		if n := cs.a.Tout(); n > 0 {
			cs.qAB = append(cs.qAB, n)
		}
	case 1:
		if n := cs.b.Tout(); n > 0 {
			cs.qBA = append(cs.qBA, n)
		}
	case 2:
		if n := cs.a.Tin(); n > 0 {
			cs.qAB = append(cs.qAB, n)
		}
	case 3:
		if n := cs.b.Tin(); n > 0 {
			cs.qBA = append(cs.qBA, n)
		}
	case 4:
		if len(cs.qAB) > 0 {
			cs.qAB = cs.qAB[1:]
			if n := cs.b.Token(); n > 0 {
				cs.qBA = append(cs.qBA, n)
			}
		}
	case 5:
		if len(cs.qBA) > 0 {
			cs.qBA = cs.qBA[1:]
			if n := cs.a.Token(); n > 0 {
				cs.qAB = append(cs.qAB, n)
			}
		}
	}
}

func (cs *channelSim) drain() {
	for len(cs.qAB) > 0 || len(cs.qBA) > 0 {
		if len(cs.qAB) > 0 {
			cs.qAB = cs.qAB[1:]
			if n := cs.b.Token(); n > 0 {
				cs.qBA = append(cs.qBA, n)
			}
		}
		if len(cs.qBA) > 0 {
			cs.qBA = cs.qBA[1:]
			if n := cs.a.Token(); n > 0 {
				cs.qAB = append(cs.qAB, n)
			}
		}
	}
}

// TestBoundedSlackProperty: under any schedule, the two histories never
// diverge by more than N transitions, and tokens are conserved (E4, E6).
func TestBoundedSlackProperty(t *testing.T) {
	for _, mode := range []Mode{TinExplicit, TinOnToken} {
		for _, slack := range []int{2, 3, 5, 8} {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				cs := newChannelSim(t, slack, mode)
				for i := 0; i < 500; i++ {
					cs.step(rng)
					lead := int64(cs.a.Transitions()) - int64(cs.b.Transitions())
					if lead < 0 {
						lead = -lead
					}
					if lead > int64(slack) {
						return false
					}
					inflight := len(cs.qAB) + len(cs.qBA)
					if cs.a.TokensHeld()+cs.b.TokensHeld()+inflight != 2*slack {
						return false // tokens not conserved
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatalf("mode=%v slack=%d: %v", mode, slack, err)
			}
		}
	}
}

// TestConsistentHistoryProperty: histories are alternating and, once the
// channel quiesces, identical (E4).
func TestConsistentHistoryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		cs := newChannelSim(t, 2, TinOnToken)
		for i := 0; i < 300; i++ {
			cs.step(rng)
		}
		cs.drain()
		// After draining all tokens both sides must agree exactly.
		if cs.a.Transitions() != cs.b.Transitions() {
			t.Fatalf("trial %d: histories of different length after quiescence: %d vs %d",
				trial, cs.a.Transitions(), cs.b.Transitions())
		}
		for _, hist := range [][]Status{cs.histA, cs.histB} {
			want := Down // first transition is always Up -> Down
			for i, s := range hist {
				if s != want {
					t.Fatalf("trial %d: history not alternating at %d: %v", trial, i, hist)
				}
				if want == Down {
					want = Up
				} else {
					want = Down
				}
			}
		}
	}
}

// TestStability: one tout on a healthy channel causes exactly two
// transitions per side (Down then back Up) and then quiesces (E6).
func TestStability(t *testing.T) {
	cs := newChannelSim(t, 2, TinOnToken)
	if n := cs.a.Tout(); n > 0 {
		cs.qAB = append(cs.qAB, n)
	}
	cs.drain()
	if got := cs.a.Transitions(); got != 2 {
		t.Fatalf("A made %d transitions, want 2 (Down, Up)", got)
	}
	if got := cs.b.Transitions(); got != 2 {
		t.Fatalf("B made %d transitions, want 2 (Down, Up)", got)
	}
	if cs.a.Status() != Up || cs.b.Status() != Up {
		t.Fatal("both sides must settle Up")
	}
	wantA := []Status{Down, Up}
	for i, s := range cs.histA {
		if s != wantA[i] {
			t.Fatalf("A history %v", cs.histA)
		}
	}
}

// TestSimultaneousTouts: both sides time out at once; histories stay
// consistent and settle Up after token exchange.
func TestSimultaneousTouts(t *testing.T) {
	cs := newChannelSim(t, 2, TinOnToken)
	if n := cs.a.Tout(); n > 0 {
		cs.qAB = append(cs.qAB, n)
	}
	if n := cs.b.Tout(); n > 0 {
		cs.qBA = append(cs.qBA, n)
	}
	cs.drain()
	if cs.a.Transitions() != cs.b.Transitions() {
		t.Fatalf("histories diverge: %d vs %d", cs.a.Transitions(), cs.b.Transitions())
	}
	if cs.a.Status() != cs.b.Status() {
		t.Fatal("statuses diverge after quiescence")
	}
}
