package linkstate

import "time"

// Ping is the wire message of the monitoring protocol: an unreliable
// datagram carrying a sequence number, the highest peer sequence seen (the
// acknowledgement), and the sender's cumulative token count. The cumulative
// count maps the reliable token stream onto unreliable pings: the receiver
// compares it with the tokens already consumed and feeds the difference into
// the state machine, so lost pings never lose or duplicate tokens —
// "tokens are conserved".
type Ping struct {
	Seq    uint64 // sender's ping sequence number
	Echo   uint64 // highest Seq received from the peer
	Tokens uint64 // cumulative tokens the sender has emitted
}

// Monitor binds an Endpoint to the ping realisation of the protocol for one
// channel (one local interface paired with one remote interface). It is a
// pure state machine over virtual time: the driver calls Tick every ping
// interval and OnPing for every received datagram; both return the pings to
// transmit. Monitor is not safe for concurrent use.
type Monitor struct {
	ep       *Endpoint
	interval time.Duration
	timeout  time.Duration

	seq        uint64 // our ping sequence counter
	peerSeq    uint64 // highest peer seq seen
	tokensSent uint64 // cumulative tokens emitted by our endpoint
	tokensSeen uint64 // cumulative peer tokens consumed

	lastBidir int64 // last virtual time (ns) bidirectional traffic confirmed
	started   bool
}

// NewMonitor wraps ep. interval is the ping period; timeout is how long
// without evidence of bidirectional communication before a tout hint fires.
// timeout should be a small multiple of interval (the paper's testbed used
// roughly 2s detection).
func NewMonitor(ep *Endpoint, interval, timeout time.Duration) *Monitor {
	return &Monitor{ep: ep, interval: interval, timeout: timeout}
}

// Endpoint returns the wrapped state machine.
func (m *Monitor) Endpoint() *Endpoint { return m.ep }

// Status returns the channel status as seen by this side.
func (m *Monitor) Status() Status { return m.ep.Status() }

// buildPing assembles the datagram reflecting current counters.
func (m *Monitor) buildPing() Ping {
	m.seq++
	return Ping{Seq: m.seq, Echo: m.peerSeq, Tokens: m.tokensSent}
}

// Tick advances the monitor at virtual time now (nanoseconds) and returns
// the ping to send. The driver must call it every interval. Tick also
// evaluates the time-out condition and injects tout into the endpoint when
// bidirectional communication has been silent past the timeout.
func (m *Monitor) Tick(now int64) Ping {
	if !m.started {
		m.started = true
		m.lastBidir = now
	}
	if now-m.lastBidir > int64(m.timeout) {
		m.tokensSent += uint64(m.ep.Tout())
	}
	return m.buildPing()
}

// OnPing processes a received datagram at virtual time now. It returns an
// extra ping to send immediately when the endpoint emitted tokens in
// response (so acknowledgements don't wait a full interval), or nil.
func (m *Monitor) OnPing(p Ping, now int64) *Ping {
	if p.Seq > m.peerSeq {
		m.peerSeq = p.Seq
	}
	emitted := uint64(0)
	// The peer echoing a recent sequence of ours proves both directions
	// work: that is the paper's tin condition.
	if p.Echo > 0 && m.seq >= p.Echo && int64(m.seq-p.Echo)*int64(m.interval) <= int64(m.timeout) {
		m.lastBidir = now
		emitted += uint64(m.ep.Tin())
	}
	// Consume any new tokens carried by the cumulative counter.
	if p.Tokens > m.tokensSeen {
		delta := p.Tokens - m.tokensSeen
		m.tokensSeen = p.Tokens
		for i := uint64(0); i < delta; i++ {
			emitted += uint64(m.ep.Token())
		}
	}
	if emitted == 0 {
		return nil
	}
	m.tokensSent += emitted
	out := m.buildPing()
	return &out
}

// Interval returns the configured ping period (drivers schedule Tick with
// it).
func (m *Monitor) Interval() time.Duration { return m.interval }

// Timeout returns the configured detection timeout.
func (m *Monitor) Timeout() time.Duration { return m.timeout }
