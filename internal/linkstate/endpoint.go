// Package linkstate implements the consistent-history link-monitoring
// protocol of RAIN §2.2-2.4 (LeMahieu & Bruck, IPPS 1999): a token-counting
// state machine that guarantees both ends of a point-to-point channel
// observe the same alternating Up/Down history, with the two ends never more
// than N transitions apart (bounded slack), and with each physical channel
// event causing a bounded number of observable transitions (stability).
//
// The package separates the protocol into two layers, mirroring the paper:
//
//   - Endpoint is the token-passing state machine (Figs 7 and 8). It is
//     pure: inputs are tout/tin hints and token receipts; the only output is
//     "send a token". Tokens are conserved — 2N exist per channel.
//
//   - Monitor maps the token stream onto unreliable ping messages carrying a
//     sequence number, an acknowledgement and a cumulative token count —
//     exactly the "reliable messaging on top of pings" realisation the
//     paper describes — and derives the tout/tin hints from ping time-outs.
//
// Drivers (the discrete-event simulator in tests and experiments, the UDP
// driver in internal/rudp) push packets and clock ticks into Monitor.
package linkstate

import "fmt"

// Status is the observable channel state at one endpoint.
type Status int

// Channel states.
const (
	Up Status = iota
	Down
)

func (s Status) String() string {
	if s == Up {
		return "Up"
	}
	return "Down"
}

// Mode selects how an endpoint learns the channel has recovered.
type Mode int

const (
	// TinExplicit is the general-N machine of Fig 8: a separate tin event
	// (from the ping layer or hardware) drives Down->Up transitions.
	TinExplicit Mode = iota
	// TinOnToken is the N=2 machine of Fig 7, where tokens ride on pings:
	// a token arriving while Down and fully acknowledged is itself proof
	// of bidirectional communication, so the endpoint comes back up
	// without an explicit tin.
	TinOnToken
)

// Endpoint is one side's protocol state machine. The zero value is not
// usable; call NewEndpoint. Endpoint is not safe for concurrent use: drive
// it from one goroutine or the simulator.
type Endpoint struct {
	slack int
	mode  Mode

	// h counts observable transitions this side has made; the channel is
	// Up when h is even. r counts the peer's transitions learnt through
	// token receipts. Tokens held = slack - (h - r); the protocol keeps
	// 0 <= h-r <= slack, which is exactly the bounded-slack guarantee.
	h, r uint64

	// onTransition, when set, observes every local state transition; tests
	// use it to record histories.
	onTransition func(Status)
}

// NewEndpoint returns an endpoint with the given slack N >= 2 (the paper
// proves N = 2 is the minimum for which any such protocol can work).
func NewEndpoint(slack int, mode Mode) (*Endpoint, error) {
	if slack < 2 {
		return nil, fmt.Errorf("linkstate: slack %d < 2 (no consistent-history protocol exists)", slack)
	}
	return &Endpoint{slack: slack, mode: mode}, nil
}

// OnTransition registers a hook invoked with the new status after every
// local transition.
func (e *Endpoint) OnTransition(fn func(Status)) { e.onTransition = fn }

// Status returns the current observable channel state.
func (e *Endpoint) Status() Status {
	if e.h%2 == 0 {
		return Up
	}
	return Down
}

// Transitions returns the number of observable transitions this endpoint
// has made (the length of its history).
func (e *Endpoint) Transitions() uint64 { return e.h }

// PeerTransitions returns how many peer transitions this endpoint has
// learnt of via tokens.
func (e *Endpoint) PeerTransitions() uint64 { return e.r }

// TokensHeld returns the endpoint's current token count t = N - (h - r),
// the quantity labelling the states in Figs 7 and 8.
func (e *Endpoint) TokensHeld() int { return e.slack - int(e.h-e.r) }

// Slack returns the configured slack N.
func (e *Endpoint) Slack() int { return e.slack }

func (e *Endpoint) transition() {
	e.h++
	if e.onTransition != nil {
		e.onTransition(e.Status())
	}
}

// Tout delivers a time-out hint: bidirectional communication has probably
// been lost. It returns the number of tokens to send to the peer (0 or 1).
// A tout while already Down, or while out of tokens (the bounded-slack
// blocking state, e.g. Down t=0 in Fig 7), changes nothing.
func (e *Endpoint) Tout() (sendTokens int) {
	if e.Status() != Up {
		return 0
	}
	if e.h-e.r >= uint64(e.slack) {
		return 0 // blocked: would exceed the slack bound
	}
	e.transition()
	return 1
}

// Tin delivers a time-in hint: bidirectional communication has probably
// resumed. Only meaningful in TinExplicit mode; in TinOnToken mode recovery
// rides on token receipt and Tin is ignored (the paper: "we would never
// explicitly see a tin event"). It returns the number of tokens to send.
func (e *Endpoint) Tin() (sendTokens int) {
	if e.mode == TinOnToken {
		return 0
	}
	if e.Status() != Down {
		return 0
	}
	if e.h-e.r >= uint64(e.slack) {
		return 0
	}
	e.transition()
	return 1
}

// Token delivers one token from the peer. It returns the number of tokens
// to send back (0 or 1). Three cases, matching Figs 7/8:
//
//  1. The peer is ahead (r would exceed h): mirror its transition so the
//     histories stay identical, sending a token for our own transition.
//  2. In TinOnToken mode, an acknowledging token that leaves us Down and
//     fully caught-up proves the channel works: transition back Up.
//  3. Otherwise the token simply acknowledges one of our past transitions
//     (t increments; no state change).
func (e *Endpoint) Token() (sendTokens int) {
	e.r++
	if e.r > e.h {
		e.transition() // catch up with the peer's transition
		return 1
	}
	if e.mode == TinOnToken && e.Status() == Down && e.r == e.h {
		e.transition() // token arrival is an implicit tin
		return 1
	}
	return 0
}
