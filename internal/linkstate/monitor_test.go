package linkstate

import (
	"testing"
	"time"

	"rain/internal/sim"
)

// pairDriver wires two Monitors across a simulated lossy link and keeps
// them ticking, the test-side equivalent of the RUDP path monitor driver.
type pairDriver struct {
	s      *sim.Scheduler
	net    *sim.Network
	ma, mb *Monitor
	aAddr  sim.Addr
	bAddr  sim.Addr
}

func newPairDriver(t *testing.T, mode Mode, slack int, loss float64) *pairDriver {
	t.Helper()
	s := sim.New(2024)
	net := sim.NewNetwork(s)
	epA, err := NewEndpoint(slack, mode)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := NewEndpoint(slack, mode)
	if err != nil {
		t.Fatal(err)
	}
	interval := 10 * time.Millisecond
	timeout := 35 * time.Millisecond
	d := &pairDriver{
		s:     s,
		net:   net,
		ma:    NewMonitor(epA, interval, timeout),
		mb:    NewMonitor(epB, interval, timeout),
		aAddr: "a:0",
		bAddr: "b:0",
	}
	net.SetLink(d.aAddr, d.bAddr, sim.LinkConfig{Delay: time.Millisecond, Jitter: 500 * time.Microsecond, Loss: loss})
	net.Attach(d.aAddr, func(p sim.Packet) {
		if extra := d.ma.OnPing(p.Payload.(Ping), int64(s.Now())); extra != nil {
			net.Send(d.aAddr, d.bAddr, *extra)
		}
	})
	net.Attach(d.bAddr, func(p sim.Packet) {
		if extra := d.mb.OnPing(p.Payload.(Ping), int64(s.Now())); extra != nil {
			net.Send(d.bAddr, d.aAddr, *extra)
		}
	})
	var tickA, tickB func()
	tickA = func() {
		ping := d.ma.Tick(int64(s.Now()))
		net.Send(d.aAddr, d.bAddr, ping)
		s.After(interval, tickA)
	}
	tickB = func() {
		ping := d.mb.Tick(int64(s.Now()))
		net.Send(d.bAddr, d.aAddr, ping)
		s.After(interval, tickB)
	}
	s.After(0, tickA)
	s.After(time.Millisecond, tickB) // slight phase offset, as in reality
	return d
}

func (d *pairDriver) run(dur time.Duration) { d.s.RunFor(dur) }

func TestMonitorHealthyChannelStaysUp(t *testing.T) {
	for _, mode := range []Mode{TinExplicit, TinOnToken} {
		d := newPairDriver(t, mode, 2, 0)
		d.run(2 * time.Second)
		if d.ma.Status() != Up || d.mb.Status() != Up {
			t.Fatalf("mode %v: healthy channel reported %v/%v", mode, d.ma.Status(), d.mb.Status())
		}
		if d.ma.Endpoint().Transitions() != 0 {
			t.Fatalf("mode %v: spurious transitions on healthy channel: %d", mode, d.ma.Endpoint().Transitions())
		}
	}
}

func TestMonitorCorrectnessCutThenHeal(t *testing.T) {
	// Correctness (§2.2.2): when the channel stops, both sides eventually
	// mark Down; when it resumes, both eventually mark Up. And the
	// histories agree after quiescence.
	for _, mode := range []Mode{TinExplicit, TinOnToken} {
		d := newPairDriver(t, mode, 2, 0)
		d.run(500 * time.Millisecond)

		d.net.Cut(d.aAddr, d.bAddr)
		d.run(time.Second)
		if d.ma.Status() != Down || d.mb.Status() != Down {
			t.Fatalf("mode %v: after cut: %v/%v, want Down/Down", mode, d.ma.Status(), d.mb.Status())
		}

		d.net.Heal(d.aAddr, d.bAddr)
		d.run(time.Second)
		if d.ma.Status() != Up || d.mb.Status() != Up {
			t.Fatalf("mode %v: after heal: %v/%v, want Up/Up", mode, d.ma.Status(), d.mb.Status())
		}
		ta, tb := d.ma.Endpoint().Transitions(), d.mb.Endpoint().Transitions()
		if ta != tb {
			t.Fatalf("mode %v: histories differ after quiescence: %d vs %d", mode, ta, tb)
		}
		if ta != 2 {
			t.Fatalf("mode %v: %d transitions for one outage, want 2 (stability)", mode, ta)
		}
	}
}

func TestMonitorRepeatedOutages(t *testing.T) {
	d := newPairDriver(t, TinExplicit, 2, 0)
	for cycle := 0; cycle < 5; cycle++ {
		d.run(300 * time.Millisecond)
		d.net.Cut(d.aAddr, d.bAddr)
		d.run(600 * time.Millisecond)
		if d.ma.Status() != Down || d.mb.Status() != Down {
			t.Fatalf("cycle %d: not Down after cut", cycle)
		}
		d.net.Heal(d.aAddr, d.bAddr)
		d.run(600 * time.Millisecond)
		if d.ma.Status() != Up || d.mb.Status() != Up {
			t.Fatalf("cycle %d: not Up after heal", cycle)
		}
	}
	ta, tb := d.ma.Endpoint().Transitions(), d.mb.Endpoint().Transitions()
	if ta != tb || ta != 10 {
		t.Fatalf("after 5 outages: %d/%d transitions, want 10/10", ta, tb)
	}
}

func TestMonitorToleratesLoss(t *testing.T) {
	// 30% packet loss: the cumulative token counters must keep the
	// histories consistent, and the channel must be seen Up (pings still
	// get through often enough for the 3.5-interval timeout).
	d := newPairDriver(t, TinExplicit, 2, 0.30)
	d.run(5 * time.Second)
	if d.ma.Status() != d.mb.Status() {
		t.Fatalf("statuses diverge under loss: %v vs %v", d.ma.Status(), d.mb.Status())
	}
	lead := int64(d.ma.Endpoint().Transitions()) - int64(d.mb.Endpoint().Transitions())
	if lead < 0 {
		lead = -lead
	}
	if lead > 2 {
		t.Fatalf("slack bound violated under loss: lead %d > 2", lead)
	}
}

func TestMonitorHeavyLossSlackBound(t *testing.T) {
	// 70% loss flaps the channel; whatever happens, the bounded-slack and
	// token-conservation invariants must hold at every instant we sample.
	d := newPairDriver(t, TinOnToken, 2, 0.70)
	for i := 0; i < 40; i++ {
		d.run(250 * time.Millisecond)
		lead := int64(d.ma.Endpoint().Transitions()) - int64(d.mb.Endpoint().Transitions())
		if lead < 0 {
			lead = -lead
		}
		if lead > 2 {
			t.Fatalf("slack bound violated: lead %d", lead)
		}
	}
}

func TestMonitorPingSequencing(t *testing.T) {
	ep, err := NewEndpoint(2, TinExplicit)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ep, 10*time.Millisecond, 35*time.Millisecond)
	p1 := m.Tick(0)
	p2 := m.Tick(int64(10 * time.Millisecond))
	if p2.Seq != p1.Seq+1 {
		t.Fatalf("ping sequence did not increment: %d then %d", p1.Seq, p2.Seq)
	}
	if m.Interval() != 10*time.Millisecond || m.Timeout() != 35*time.Millisecond {
		t.Fatal("accessors disagree with construction")
	}
	// A ping from the peer echoing our recent seq counts as bidirectional.
	reply := m.OnPing(Ping{Seq: 1, Echo: p2.Seq, Tokens: 0}, int64(11*time.Millisecond))
	if reply != nil {
		t.Fatal("no tokens emitted, no immediate reply expected")
	}
	// Silence past the timeout must fire tout exactly once per outage.
	p := m.Tick(int64(100 * time.Millisecond))
	if m.Status() != Down {
		t.Fatal("timeout did not mark channel Down")
	}
	if p.Tokens != 1 {
		t.Fatalf("tout token not carried on ping: %+v", p)
	}
}

func TestMonitorTokenDeltaConsumption(t *testing.T) {
	ep, err := NewEndpoint(2, TinOnToken)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ep, 10*time.Millisecond, 35*time.Millisecond)
	m.Tick(0)
	// Peer reports 1 cumulative token (its Up->Down transition): we mirror
	// it and must answer immediately with our own token on an extra ping.
	extra := m.OnPing(Ping{Seq: 1, Echo: 0, Tokens: 1}, int64(time.Millisecond))
	if extra == nil {
		t.Fatal("mirroring a transition must emit an immediate ping")
	}
	if extra.Tokens != 1 {
		t.Fatalf("extra ping carries %d tokens, want 1", extra.Tokens)
	}
	if m.Status() != Down {
		t.Fatal("catch-up transition missing")
	}
	// A duplicate of the same cumulative count must be idempotent.
	if dup := m.OnPing(Ping{Seq: 2, Echo: 0, Tokens: 1}, int64(2*time.Millisecond)); dup != nil {
		t.Fatal("duplicate cumulative count consumed twice")
	}
}
