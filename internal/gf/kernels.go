package gf

// This file holds the slice kernels that make GF(2^8) linear algebra fast
// enough to be a fair Reed-Solomon baseline (ISSUE 1). The design:
//
//   - mulTable[c] is a dense 256-byte product table for every coefficient c,
//     so multiplying a slice by a constant is one indexed load per byte
//     instead of the exp/log dance (two dependent table loads plus a zero
//     branch). One row is 4 cache lines and stays resident in L1 for the
//     whole pass.
//
//   - MulVecSlice fuses up to four sources per pass into one destination,
//     so a Reed-Solomon parity row touches the destination once per 4 data
//     shards instead of once per shard. This is where most of the measured
//     speedup comes from: the kernel is memory-bound, and fusing removes
//     the read-modify-write traffic of repeated MulAddSlice passes.
//
// The old scalar path survives as MulSliceRef/MulAddSliceRef: the reference
// implementations used by the differential fuzz tests and the before/after
// benchmarks in the repository root.

// mulTable[c][x] = c * x in GF(2^8). 64 KiB total, filled once at package
// init by bit-serial carry-less multiplication (deliberately independent of
// the exp/log tables so the two construction paths cross-check each other in
// the tests).
var mulTable [256][256]byte

func init() {
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		for x := 1; x < 256; x++ {
			p, a, b := 0, c, x
			for b != 0 {
				if b&1 != 0 {
					p ^= a
				}
				b >>= 1
				a <<= 1
				if a&0x100 != 0 {
					a ^= Poly
				}
			}
			row[x] = byte(p)
		}
	}
}

// MulTable returns the 256-byte product table for the coefficient c:
// MulTable(c)[x] == Mul(c, x). Callers that apply the same coefficient many
// times (custom kernels, tests) can index it directly.
func MulTable(c byte) *[256]byte { return &mulTable[c] }

// MulSlice sets dst[i] = c * src[i] for all i. dst must be at least as long
// as src; only the first len(src) bytes of dst are written.
func MulSlice(c byte, src, dst []byte) {
	if len(src) == 0 {
		return
	}
	if c == 0 {
		clearSlice(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	t := &mulTable[c]
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = t[src[i]]
		dst[i+1] = t[src[i+1]]
		dst[i+2] = t[src[i+2]]
		dst[i+3] = t[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] = t[src[i]]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i: the fused multiply-
// accumulate over the field. dst must be at least as long as src.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) == 0 || c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	t := &mulTable[c]
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= t[src[i]]
		dst[i+1] ^= t[src[i+1]]
		dst[i+2] ^= t[src[i+2]]
		dst[i+3] ^= t[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= t[src[i]]
	}
}

// MulSliceRef is the pre-kernel scalar implementation of MulSlice (exp/log
// lookups, one zero branch per byte). It is retained as the reference for
// differential tests and as the "seed scalar path" side of the benchmarks.
func MulSliceRef(c byte, src, dst []byte) {
	if c == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	if len(src) == 0 {
		return
	}
	logC := int(logTable[c])
	_ = dst[len(src)-1]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[s])]
		}
	}
}

// MulAddSliceRef is the pre-kernel scalar implementation of MulAddSlice. See
// MulSliceRef.
func MulAddSliceRef(c byte, src, dst []byte) {
	if c == 0 || len(src) == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	logC := int(logTable[c])
	_ = dst[len(src)-1]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

func clearSlice(s []byte) {
	for i := range s {
		s[i] = 0
	}
}

// MulVecSlice computes out = sum_j coeffs[j] * in[j], a single output row of
// a matrix-vector product over slices. len(coeffs) must equal len(in), every
// in[j] must be at least len(out) bytes, and out must not alias any input.
// Zero coefficients are dropped, unit coefficients go through the 64-bit-wide
// XOR kernels, and the rest are consumed in fused table-lookup groups of four
// so each pass touches out once per four inputs; this is the inner kernel of
// Reed-Solomon encode and reconstruct.
func MulVecSlice(coeffs []byte, in [][]byte, out []byte) {
	if len(coeffs) != len(in) {
		panic("gf: MulVecSlice coefficient/input count mismatch")
	}
	if len(out) == 0 {
		return
	}
	var generalBuf, onesBuf [8]int
	general, ones := generalBuf[:0], onesBuf[:0]
	for j, c := range coeffs {
		switch c {
		case 0:
		case 1:
			ones = append(ones, j)
		default:
			general = append(general, j)
		}
	}
	// Table-fused groups first: the first group overwrites out, so callers
	// need not pre-zero it.
	wrote := false
	j := 0
	switch {
	case len(general) >= 4:
		mulVec4(&mulTable[coeffs[general[0]]], &mulTable[coeffs[general[1]]],
			&mulTable[coeffs[general[2]]], &mulTable[coeffs[general[3]]],
			in[general[0]], in[general[1]], in[general[2]], in[general[3]], out)
		j, wrote = 4, true
	case len(general) >= 2:
		mulVec2(&mulTable[coeffs[general[0]]], &mulTable[coeffs[general[1]]],
			in[general[0]], in[general[1]], out)
		j, wrote = 2, true
	case len(general) == 1:
		MulSlice(coeffs[general[0]], in[general[0]][:len(out)], out)
		j, wrote = 1, true
	}
	for ; j+4 <= len(general); j += 4 {
		mulAddVec4(&mulTable[coeffs[general[j]]], &mulTable[coeffs[general[j+1]]],
			&mulTable[coeffs[general[j+2]]], &mulTable[coeffs[general[j+3]]],
			in[general[j]], in[general[j+1]], in[general[j+2]], in[general[j+3]], out)
	}
	if j+2 <= len(general) {
		mulAddVec2(&mulTable[coeffs[general[j]]], &mulTable[coeffs[general[j+1]]],
			in[general[j]], in[general[j+1]], out)
		j += 2
	}
	if j < len(general) {
		MulAddSlice(coeffs[general[j]], in[general[j]][:len(out)], out)
	}
	// Unit coefficients: pure XOR at 8 bytes per op.
	if len(ones) > 0 {
		onesIn := make([][]byte, len(ones))
		for i, idx := range ones {
			onesIn[i] = in[idx]
		}
		if !wrote {
			XorVecSlice(onesIn, out)
			return
		}
		k := 0
		for ; k+4 <= len(onesIn); k += 4 {
			xorAddVec4(onesIn[k], onesIn[k+1], onesIn[k+2], onesIn[k+3], out)
		}
		if k+2 <= len(onesIn) {
			xorAddVec2(onesIn[k], onesIn[k+1], out)
			k += 2
		}
		if k < len(onesIn) {
			XorSlice(onesIn[k][:len(out)], out)
		}
		return
	}
	if !wrote {
		clearSlice(out)
	}
}

func mulVec4(t0, t1, t2, t3 *[256]byte, s0, s1, s2, s3, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	for i := 0; i < n; i++ {
		dst[i] = t0[s0[i]] ^ t1[s1[i]] ^ t2[s2[i]] ^ t3[s3[i]]
	}
}

func mulAddVec4(t0, t1, t2, t3 *[256]byte, s0, s1, s2, s3, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	for i := 0; i < n; i++ {
		dst[i] ^= t0[s0[i]] ^ t1[s1[i]] ^ t2[s2[i]] ^ t3[s3[i]]
	}
}

func mulVec2(t0, t1 *[256]byte, s0, s1, dst []byte) {
	n := len(dst)
	s0, s1 = s0[:n], s1[:n]
	for i := 0; i < n; i++ {
		dst[i] = t0[s0[i]] ^ t1[s1[i]]
	}
}

func mulAddVec2(t0, t1 *[256]byte, s0, s1, dst []byte) {
	n := len(dst)
	s0, s1 = s0[:n], s1[:n]
	for i := 0; i < n; i++ {
		dst[i] ^= t0[s0[i]] ^ t1[s1[i]]
	}
}

// MulVecSlices applies the matrix to a vector of slices: out[r] =
// sum_c m[r][c] * in[c] for every row r. len(in) must equal m.Cols and
// len(out) must equal m.Rows; each out[r] is fully overwritten up to its
// length, and every in[c] must be at least that long. This is the row-apply
// primitive Reed-Solomon encode and reconstruct are built on.
func (m *Matrix) MulVecSlices(in, out [][]byte) {
	if len(in) != m.Cols || len(out) != m.Rows {
		panic("gf: MulVecSlices shape mismatch")
	}
	for r := range out {
		MulVecSlice(m.Row(r), in, out[r])
	}
}
