package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xca) != 0x53^0xca {
		t.Fatalf("Add(0x53, 0xca) = %#x, want %#x", Add(0x53, 0xca), 0x53^0xca)
	}
	if Sub(0x53, 0xca) != Add(0x53, 0xca) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulByZeroAndOne(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d, 0) = %d, want 0", a, got)
		}
		if got := Mul(0, byte(a)); got != 0 {
			t.Fatalf("Mul(0, %d) = %d, want 0", a, got)
		}
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d, 1) = %d, want %d", a, got, a)
		}
	}
}

// mulSlow is bit-serial carry-less multiplication mod Poly, used as a
// reference implementation for the table-driven Mul.
func mulSlow(a, b byte) byte {
	var p int
	x, y := int(a), int(b)
	for i := 0; i < 8; i++ {
		if y&1 != 0 {
			p ^= x
		}
		y >>= 1
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	return byte(p)
}

func TestMulMatchesBitSerial(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := mulSlow(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, b) == Mul(b, a) && Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a = %d", a)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1, a) != Inv(a) for a = %d", a)
		}
	}
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for i := 0; i < 255; i++ {
		if Log(Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, Log(Exp(i)))
		}
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("negative exponent must wrap modulo 255")
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp(255) must wrap to Exp(0)")
	}
}

func TestGeneratorOrder(t *testing.T) {
	// alpha = 2 must generate the full multiplicative group: 255 distinct
	// powers before repeating.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("alpha^%d = %d repeats an earlier power", i, v)
		}
		seen[v] = true
	}
}

func TestMulSlice(t *testing.T) {
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i * 7)
	}
	dst := make([]byte, 100)
	MulSlice(0x1d, src, dst)
	for i := range src {
		if dst[i] != Mul(0x1d, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	MulSlice(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSlice by zero must clear dst")
		}
	}
	MulSlice(1, src, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice by one must copy src")
	}
}

func TestMulAddSlice(t *testing.T) {
	src := make([]byte, 37) // odd length to hit the scalar tail
	dst := make([]byte, 37)
	want := make([]byte, 37)
	for i := range src {
		src[i] = byte(3 * i)
		dst[i] = byte(11 * i)
		want[i] = dst[i] ^ Mul(0x8e, src[i])
	}
	MulAddSlice(0x8e, src, dst)
	if !bytes.Equal(dst, want) {
		t.Fatal("MulAddSlice mismatch")
	}
	saved := append([]byte(nil), dst...)
	MulAddSlice(0, src, dst)
	if !bytes.Equal(dst, saved) {
		t.Fatal("MulAddSlice with c=0 must be a no-op")
	}
}

func TestXorSliceAllLengths(t *testing.T) {
	// Exercise every length 0..65 so both the 8-byte blocks and the scalar
	// tail are covered.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 65; n++ {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = src[i] ^ dst[i]
		}
		XorSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XorSlice wrong for length %d", n)
		}
	}
}

func TestXorSliceSelfInverse(t *testing.T) {
	f := func(data []byte) bool {
		dst := make([]byte, len(data))
		XorSlice(data, dst)
		XorSlice(data, dst)
		for _, b := range dst {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixIdentityMul(t *testing.T) {
	id := Identity(4)
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = byte(i + 1)
	}
	if !bytes.Equal(id.Mul(m).Data, m.Data) {
		t.Fatal("I * M != M")
	}
	if !bytes.Equal(m.Mul(id).Data, m.Data) {
		t.Fatal("M * I != M")
	}
}

func TestMatrixInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		rng.Read(m.Data)
		inv, ok := m.Invert()
		if !ok {
			continue // singular random matrix; skip
		}
		prod := m.Mul(inv)
		if !bytes.Equal(prod.Data, Identity(n).Data) {
			t.Fatalf("M * M^-1 != I for n=%d trial=%d", n, trial)
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	m.Set(0, 1, 10)
	m.Set(1, 0, 5)
	m.Set(1, 1, 10) // duplicate row: singular
	if _, ok := m.Invert(); ok {
		t.Fatal("Invert of singular matrix must report ok=false")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// The MDS property of the derived RS code rests on every square
	// submatrix built from distinct rows being invertible. Check all
	// 3-row selections of a 7x3 Vandermonde matrix.
	v := Vandermonde(7, 3)
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			for c := b + 1; c < 7; c++ {
				sub := NewMatrix(3, 3)
				copy(sub.Row(0), v.Row(a))
				copy(sub.Row(1), v.Row(b))
				copy(sub.Row(2), v.Row(c))
				if _, ok := sub.Invert(); !ok {
					t.Fatalf("Vandermonde rows (%d,%d,%d) singular", a, b, c)
				}
			}
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rand.New(rand.NewSource(7)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8e, src, dst)
	}
}

func BenchmarkXorSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rand.New(rand.NewSource(7)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}
