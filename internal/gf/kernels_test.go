package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelTestLengths covers the empty slice, single bytes, lengths around the
// 4-, 8- and 32-byte unroll boundaries, and non-multiples of 16.
var kernelTestLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100, 255, 1000, 4096, 4097}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMulTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := MulTable(byte(c))
		for x := 0; x < 256; x++ {
			if row[x] != Mul(byte(c), byte(x)) {
				t.Fatalf("MulTable(%d)[%d] = %d, want Mul = %d", c, x, row[x], Mul(byte(c), byte(x)))
			}
		}
	}
}

// TestMulSliceMatchesScalar cross-checks the table kernel against scalar Mul
// byte for byte, over random coefficients and all boundary lengths.
func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range kernelTestLengths {
		for trial := 0; trial < 8; trial++ {
			c := byte(rng.Intn(256))
			src := randBytes(rng, n)
			dst := randBytes(rng, n)
			ref := make([]byte, n)
			for i := range src {
				ref[i] = Mul(c, src[i])
			}
			MulSlice(c, src, dst)
			if !bytes.Equal(dst, ref) {
				t.Fatalf("MulSlice(c=%d, n=%d) diverges from scalar Mul", c, n)
			}
			refDst := randBytes(rng, n)
			MulSliceRef(c, src, refDst)
			if !bytes.Equal(refDst, ref) {
				t.Fatalf("MulSliceRef(c=%d, n=%d) diverges from scalar Mul", c, n)
			}
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, n := range kernelTestLengths {
		for trial := 0; trial < 8; trial++ {
			c := byte(rng.Intn(256))
			src := randBytes(rng, n)
			dst := randBytes(rng, n)
			ref := append([]byte(nil), dst...)
			for i := range src {
				ref[i] ^= Mul(c, src[i])
			}
			got := append([]byte(nil), dst...)
			MulAddSlice(c, src, got)
			if !bytes.Equal(got, ref) {
				t.Fatalf("MulAddSlice(c=%d, n=%d) diverges from scalar Mul", c, n)
			}
			got2 := append([]byte(nil), dst...)
			MulAddSliceRef(c, src, got2)
			if !bytes.Equal(got2, ref) {
				t.Fatalf("MulAddSliceRef(c=%d, n=%d) diverges from scalar Mul", c, n)
			}
		}
	}
}

func TestXorVecSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, n := range kernelTestLengths {
		// The k list straddles every group boundary of the 8/4/3/2/1 fused
		// dispatch, including the array-code equation lengths (11 for
		// xcode(13), up to 2p-ish for EVENODD diagonals).
		for _, k := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 19, 23} {
			in := make([][]byte, k)
			for j := range in {
				in[j] = randBytes(rng, n)
			}
			ref := make([]byte, n)
			for j := range in {
				for i := range ref {
					ref[i] ^= in[j][i]
				}
			}
			out := randBytes(rng, n) // pre-filled garbage: must be overwritten
			XorVecSlice(in, out)
			if !bytes.Equal(out, ref) {
				t.Fatalf("XorVecSlice(k=%d, n=%d) wrong", k, n)
			}
		}
	}
}

func TestPQSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for _, n := range kernelTestLengths {
		for _, k := range []int{1, 2, 3, 4, 7, 8, 10, 13} {
			in := make([][]byte, k)
			for j := range in {
				in[j] = randBytes(rng, n)
			}
			refP := make([]byte, n)
			refQ := make([]byte, n)
			for j := range in {
				coeff := Exp(j)
				for i := 0; i < n; i++ {
					refP[i] ^= in[j][i]
					refQ[i] ^= Mul(coeff, in[j][i])
				}
			}
			p := randBytes(rng, n)
			q := randBytes(rng, n)
			PQSlice(in, p, q)
			if !bytes.Equal(p, refP) {
				t.Fatalf("PQSlice(k=%d, n=%d): P row wrong", k, n)
			}
			if !bytes.Equal(q, refQ) {
				t.Fatalf("PQSlice(k=%d, n=%d): Q row wrong", k, n)
			}
		}
	}
}

// TestMulVecSliceMatchesScalar checks the fused multi-input kernel,
// including its zero- and unit-coefficient special cases, against a scalar
// Mul accumulation.
func TestMulVecSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for _, n := range kernelTestLengths {
		for _, k := range []int{0, 1, 2, 3, 4, 5, 8, 9, 11} {
			coeffs := make([]byte, k)
			in := make([][]byte, k)
			for j := range in {
				switch rng.Intn(4) {
				case 0:
					coeffs[j] = 0 // exercise the dropped-input path
				case 1:
					coeffs[j] = 1 // exercise the XOR fast path
				default:
					coeffs[j] = byte(rng.Intn(256))
				}
				in[j] = randBytes(rng, n)
			}
			ref := make([]byte, n)
			for j := range in {
				for i := range ref {
					ref[i] ^= Mul(coeffs[j], in[j][i])
				}
			}
			out := randBytes(rng, n)
			MulVecSlice(coeffs, in, out)
			if !bytes.Equal(out, ref) {
				t.Fatalf("MulVecSlice(k=%d, n=%d, coeffs=%v) wrong", k, n, coeffs)
			}
		}
	}
}

func TestMatrixMulVecSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		n := kernelTestLengths[rng.Intn(len(kernelTestLengths))]
		m := NewMatrix(rows, cols)
		rng.Read(m.Data)
		in := make([][]byte, cols)
		for j := range in {
			in[j] = randBytes(rng, n)
		}
		out := make([][]byte, rows)
		ref := make([][]byte, rows)
		for r := range out {
			out[r] = randBytes(rng, n)
			ref[r] = make([]byte, n)
			for j := 0; j < cols; j++ {
				for i := 0; i < n; i++ {
					ref[r][i] ^= Mul(m.At(r, j), in[j][i])
				}
			}
		}
		m.MulVecSlices(in, out)
		for r := range out {
			if !bytes.Equal(out[r], ref[r]) {
				t.Fatalf("MulVecSlices %dx%d n=%d: row %d wrong", rows, cols, n, r)
			}
		}
	}
}

func TestMulVecSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecSlice with mismatched coeffs/in did not panic")
		}
	}()
	MulVecSlice([]byte{1, 2}, [][]byte{{0}}, []byte{0})
}

// FuzzMulSlice differentially fuzzes the table kernel against scalar Mul on
// arbitrary coefficients and slice contents (the satellite requirement:
// random coefficients and lengths, including 0, 1 and non-multiples of 16).
func FuzzMulSlice(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{7})
	f.Add(byte(0x8e), []byte("seventeen bytes!!"))
	f.Add(byte(255), bytes.Repeat([]byte{0xff}, 33))
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		dst := make([]byte, len(src))
		MulSlice(c, src, dst)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice(c=%d) byte %d: got %d, want %d", c, i, dst[i], Mul(c, src[i]))
			}
		}
	})
}

// FuzzMulAddSlice differentially fuzzes the multiply-accumulate kernel
// against scalar Mul plus XOR.
func FuzzMulAddSlice(f *testing.F) {
	f.Add(byte(0), []byte{}, byte(0))
	f.Add(byte(2), []byte{1, 2, 3}, byte(0x55))
	f.Add(byte(0x1d), bytes.Repeat([]byte{0xab}, 19), byte(0xff))
	f.Fuzz(func(t *testing.T, c byte, src []byte, fill byte) {
		dst := bytes.Repeat([]byte{fill}, len(src))
		MulAddSlice(c, src, dst)
		for i := range src {
			want := fill ^ Mul(c, src[i])
			if dst[i] != want {
				t.Fatalf("MulAddSlice(c=%d) byte %d: got %d, want %d", c, i, dst[i], want)
			}
		}
	})
}

// FuzzPQSlice differentially fuzzes the fused P+Q kernel: the fuzzer picks
// the shard count and a byte pool; shards are equal-length windows into it.
func FuzzPQSlice(f *testing.F) {
	f.Add(3, []byte("some pool of bytes to slice into shards, long enough to matter"))
	f.Add(1, []byte{9})
	f.Add(8, bytes.Repeat([]byte{3, 1, 4, 1, 5, 9}, 40))
	f.Fuzz(func(t *testing.T, k int, pool []byte) {
		if k < 1 || k > 16 || len(pool) < k {
			t.Skip()
		}
		n := len(pool) / k
		in := make([][]byte, k)
		for j := range in {
			in[j] = pool[j*n : (j+1)*n]
		}
		p := make([]byte, n)
		q := make([]byte, n)
		PQSlice(in, p, q)
		for i := 0; i < n; i++ {
			var wantP, wantQ byte
			for j := range in {
				wantP ^= in[j][i]
				wantQ ^= Mul(Exp(j), in[j][i])
			}
			if p[i] != wantP || q[i] != wantQ {
				t.Fatalf("PQSlice(k=%d, n=%d) byte %d: got (%d,%d), want (%d,%d)", k, n, i, p[i], q[i], wantP, wantQ)
			}
		}
	})
}

func BenchmarkMulAddSliceKernelVsRef(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rand.New(rand.NewSource(7)).Read(src)
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			MulAddSliceRef(0x8e, src, dst)
		}
	})
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			MulAddSlice(0x8e, src, dst)
		}
	})
}

func BenchmarkPQSlice(b *testing.B) {
	const n = 64 * 1024
	in := make([][]byte, 8)
	rng := rand.New(rand.NewSource(8))
	for j := range in {
		in[j] = randBytes(rng, n)
	}
	p := make([]byte, n)
	q := make([]byte, n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PQSlice(in, p, q)
	}
}
