// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is realised as polynomials over GF(2) modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for
// storage-system Reed-Solomon codes.
//
// Two table layers back the arithmetic. Scalar Mul/Div/Inv/Exp/Log use the
// classic exp/log tables: Mul(a, b) = expTable[logTable[a]+logTable[b]] with
// a zero test per operand. The slice kernels that dominate Reed-Solomon
// encode and decode use a second layer: mulTable, a full 256x256 product
// table (64 KiB) giving each coefficient c a dense 256-byte row, so
// MulSlice/MulAddSlice cost one branch-free indexed load per byte and the
// row stays in L1 for the whole pass. On top of those, MulVecSlice and
// Matrix.MulVecSlices fuse up to four source slices per destination pass,
// eliminating most of the destination read-modify-write traffic of repeated
// multiply-accumulate sweeps — the kernels are memory-bound, so this fusion
// is worth more than the table swap itself. The pre-kernel scalar loops are
// kept as MulSliceRef/MulAddSliceRef for differential tests and benchmarks.
//
// GF(2^8) is the substrate for the Reed-Solomon baseline that the RAIN paper
// (§4.1) compares its XOR-only array codes against: RS is MDS for any (n, k)
// but pays one field multiplication per byte, whereas the B-Code, X-Code and
// EVENODD codes need XOR only.
package gf

// Poly is the primitive polynomial used to construct the field, with the
// x^8 term included (0x11d = x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

// Order is the number of elements of the field.
const Order = 256

var (
	expTable [512]byte // expTable[i] = alpha^i, doubled to avoid a mod 255
	logTable [256]byte // logTable[x] = i such that alpha^i == x, for x != 0
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse, so
// Sub is the same operation.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8), identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Div panics if b is zero: division by zero is
// a programming error in every caller (matrix inversion guards pivots).
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns alpha^n for the field generator alpha = 0x02. Negative n is
// accepted and interpreted modulo 255.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns the discrete logarithm of a to base alpha. It panics for a = 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// XorSlice sets dst[i] ^= src[i] for all i. It XORs eight bytes at a time
// through uint64 loads where alignment permits; this is the single hot loop
// of every array code in internal/ecc.
func XorSlice(src, dst []byte) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		d := uint64(dst[i]) | uint64(dst[i+1])<<8 | uint64(dst[i+2])<<16 | uint64(dst[i+3])<<24 |
			uint64(dst[i+4])<<32 | uint64(dst[i+5])<<40 | uint64(dst[i+6])<<48 | uint64(dst[i+7])<<56
		s := uint64(src[i]) | uint64(src[i+1])<<8 | uint64(src[i+2])<<16 | uint64(src[i+3])<<24 |
			uint64(src[i+4])<<32 | uint64(src[i+5])<<40 | uint64(src[i+6])<<48 | uint64(src[i+7])<<56
		d ^= s
		dst[i] = byte(d)
		dst[i+1] = byte(d >> 8)
		dst[i+2] = byte(d >> 16)
		dst[i+3] = byte(d >> 24)
		dst[i+4] = byte(d >> 32)
		dst[i+5] = byte(d >> 40)
		dst[i+6] = byte(d >> 48)
		dst[i+7] = byte(d >> 56)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Matrix is a dense matrix over GF(2^8), row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("gf: matrix dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulAddSlice(a, other.Row(k), out.Row(r))
		}
	}
	return out
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows-by-cols Vandermonde matrix with
// element (r, c) = alpha^(r*c). Any square submatrix formed from distinct
// rows is invertible, which is what makes the derived Reed-Solomon code MDS.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c))
		}
	}
	return m
}

// Invert returns the inverse of the square matrix m, or ok=false when m is
// singular. m is not modified.
func (m *Matrix) Invert() (inv *Matrix, ok bool) {
	if m.Rows != m.Cols {
		panic("gf: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv = Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot becomes 1.
		p := work.At(col, col)
		if p != 1 {
			ip := Inv(p)
			scaleRow(work.Row(col), ip)
			scaleRow(inv.Row(col), ip)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulAddSlice(f, work.Row(col), work.Row(r))
			MulAddSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, true
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	for i := range row {
		row[i] = Mul(row[i], c)
	}
}
