package gf

import "encoding/binary"

// SWAR kernels: eight field elements packed in one uint64, used by the
// Reed-Solomon P+Q fast path in internal/ecc (PQSlice, called from
// rs.go Encode). Multiplying a packed lane vector by the generator
// alpha = x (0x02) is six ALU operations for eight bytes — far cheaper than
// eight table lookups — and evaluating a parity row of ascending alpha
// powers by Horner's rule needs exactly one such multiply per data shard
// per 8-byte column.

const (
	swarHi = 0x8080808080808080 // high bit of every lane
	swarLo = 0x7f7f7f7f7f7f7f7f // low seven bits of every lane
)

// mulAlpha64 multiplies each of the eight packed field elements by alpha:
// shift each lane left one bit and reduce lanes that overflowed by the low
// byte of the field polynomial. (hi>>7)*0x1d broadcasts 0x1d into exactly
// the lanes whose high bit was set; the per-lane products cannot carry.
func mulAlpha64(v uint64) uint64 {
	hi := v & swarHi
	return ((v & swarLo) << 1) ^ ((hi >> 7) * (Poly & 0xff))
}

// PQSlice computes the two RAID-6-style parity rows of the inputs in one
// fused pass: p[i] = xor of in[j][i], and q[i] = sum_j alpha^j * in[j][i],
// with q evaluated by Horner's rule. Each input byte is loaded exactly once
// and both accumulators live in registers, four independent 8-byte lanes at
// a time so the serial multiply-by-alpha dependency chains overlap. p and q
// must have equal length, every input must be at least that long, and
// neither output may alias an input. At least one input is required.
func PQSlice(in [][]byte, p, q []byte) {
	if len(in) == 0 {
		panic("gf: PQSlice needs at least one input")
	}
	n := len(p)
	q = q[:n]
	i := 0
	for ; i+32 <= n; i += 32 {
		var p0, p1, p2, p3, q0, q1, q2, q3 uint64
		for j := len(in) - 1; j >= 0; j-- {
			s := in[j][i:]
			a := binary.LittleEndian.Uint64(s)
			b := binary.LittleEndian.Uint64(s[8:])
			c := binary.LittleEndian.Uint64(s[16:])
			d := binary.LittleEndian.Uint64(s[24:])
			p0 ^= a
			p1 ^= b
			p2 ^= c
			p3 ^= d
			q0 = mulAlpha64(q0) ^ a
			q1 = mulAlpha64(q1) ^ b
			q2 = mulAlpha64(q2) ^ c
			q3 = mulAlpha64(q3) ^ d
		}
		binary.LittleEndian.PutUint64(p[i:], p0)
		binary.LittleEndian.PutUint64(p[i+8:], p1)
		binary.LittleEndian.PutUint64(p[i+16:], p2)
		binary.LittleEndian.PutUint64(p[i+24:], p3)
		binary.LittleEndian.PutUint64(q[i:], q0)
		binary.LittleEndian.PutUint64(q[i+8:], q1)
		binary.LittleEndian.PutUint64(q[i+16:], q2)
		binary.LittleEndian.PutUint64(q[i+24:], q3)
	}
	t2 := &mulTable[2]
	for ; i < n; i++ {
		var pv, qv byte
		for j := len(in) - 1; j >= 0; j-- {
			s := in[j][i]
			pv ^= s
			qv = t2[qv] ^ s
		}
		p[i] = pv
		q[i] = qv
	}
}

// XorVecSlice sets out to the XOR of all inputs: out[i] = in[0][i] ^ ... ^
// in[len(in)-1][i]. Inputs are consumed in fused groups of up to eight so out
// is touched once per eight sources — the wide groups are what make the XOR
// array codes' parity equations (up to n-2 terms each) a near-single-pass
// computation. Every input must be at least len(out) bytes; out must not
// alias any input. With no inputs, out is zeroed.
func XorVecSlice(in [][]byte, out []byte) {
	if len(out) == 0 {
		return
	}
	j := 0
	switch {
	case len(in) == 0:
		clearSlice(out)
		return
	case len(in) >= 8:
		xorVec8(in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7], out)
		j = 8
	case len(in) >= 4:
		xorVec4(in[0], in[1], in[2], in[3], out)
		j = 4
	case len(in) >= 2:
		xorVec2(in[0], in[1], out)
		j = 2
	default:
		copy(out, in[0][:len(out)])
		j = 1
	}
	for ; j+8 <= len(in); j += 8 {
		xorAddVec8(in[j], in[j+1], in[j+2], in[j+3], in[j+4], in[j+5], in[j+6], in[j+7], out)
	}
	if j+4 <= len(in) {
		xorAddVec4(in[j], in[j+1], in[j+2], in[j+3], out)
		j += 4
	}
	if j+3 <= len(in) {
		xorAddVec3(in[j], in[j+1], in[j+2], out)
		j += 3
	}
	if j+2 <= len(in) {
		xorAddVec2(in[j], in[j+1], out)
		j += 2
	}
	if j < len(in) {
		XorSlice(in[j][:len(out)], out)
	}
}

func xorVec8(s0, s1, s2, s3, s4, s5, s6, s7, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	s4, s5, s6, s7 = s4[:n], s5[:n], s6[:n], s7[:n]
	i := 0
	for ; i+32 <= n; i += 32 {
		a0 := binary.LittleEndian.Uint64(s0[i:]) ^ binary.LittleEndian.Uint64(s1[i:]) ^
			binary.LittleEndian.Uint64(s2[i:]) ^ binary.LittleEndian.Uint64(s3[i:]) ^
			binary.LittleEndian.Uint64(s4[i:]) ^ binary.LittleEndian.Uint64(s5[i:]) ^
			binary.LittleEndian.Uint64(s6[i:]) ^ binary.LittleEndian.Uint64(s7[i:])
		a1 := binary.LittleEndian.Uint64(s0[i+8:]) ^ binary.LittleEndian.Uint64(s1[i+8:]) ^
			binary.LittleEndian.Uint64(s2[i+8:]) ^ binary.LittleEndian.Uint64(s3[i+8:]) ^
			binary.LittleEndian.Uint64(s4[i+8:]) ^ binary.LittleEndian.Uint64(s5[i+8:]) ^
			binary.LittleEndian.Uint64(s6[i+8:]) ^ binary.LittleEndian.Uint64(s7[i+8:])
		a2 := binary.LittleEndian.Uint64(s0[i+16:]) ^ binary.LittleEndian.Uint64(s1[i+16:]) ^
			binary.LittleEndian.Uint64(s2[i+16:]) ^ binary.LittleEndian.Uint64(s3[i+16:]) ^
			binary.LittleEndian.Uint64(s4[i+16:]) ^ binary.LittleEndian.Uint64(s5[i+16:]) ^
			binary.LittleEndian.Uint64(s6[i+16:]) ^ binary.LittleEndian.Uint64(s7[i+16:])
		a3 := binary.LittleEndian.Uint64(s0[i+24:]) ^ binary.LittleEndian.Uint64(s1[i+24:]) ^
			binary.LittleEndian.Uint64(s2[i+24:]) ^ binary.LittleEndian.Uint64(s3[i+24:]) ^
			binary.LittleEndian.Uint64(s4[i+24:]) ^ binary.LittleEndian.Uint64(s5[i+24:]) ^
			binary.LittleEndian.Uint64(s6[i+24:]) ^ binary.LittleEndian.Uint64(s7[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], a0)
		binary.LittleEndian.PutUint64(dst[i+8:], a1)
		binary.LittleEndian.PutUint64(dst[i+16:], a2)
		binary.LittleEndian.PutUint64(dst[i+24:], a3)
	}
	for ; i < n; i++ {
		dst[i] = s0[i] ^ s1[i] ^ s2[i] ^ s3[i] ^ s4[i] ^ s5[i] ^ s6[i] ^ s7[i]
	}
}

func xorAddVec8(s0, s1, s2, s3, s4, s5, s6, s7, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	s4, s5, s6, s7 = s4[:n], s5[:n], s6[:n], s7[:n]
	i := 0
	for ; i+32 <= n; i += 32 {
		a0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(s0[i:]) ^ binary.LittleEndian.Uint64(s1[i:]) ^
			binary.LittleEndian.Uint64(s2[i:]) ^ binary.LittleEndian.Uint64(s3[i:]) ^
			binary.LittleEndian.Uint64(s4[i:]) ^ binary.LittleEndian.Uint64(s5[i:]) ^
			binary.LittleEndian.Uint64(s6[i:]) ^ binary.LittleEndian.Uint64(s7[i:])
		a1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(s0[i+8:]) ^ binary.LittleEndian.Uint64(s1[i+8:]) ^
			binary.LittleEndian.Uint64(s2[i+8:]) ^ binary.LittleEndian.Uint64(s3[i+8:]) ^
			binary.LittleEndian.Uint64(s4[i+8:]) ^ binary.LittleEndian.Uint64(s5[i+8:]) ^
			binary.LittleEndian.Uint64(s6[i+8:]) ^ binary.LittleEndian.Uint64(s7[i+8:])
		a2 := binary.LittleEndian.Uint64(dst[i+16:]) ^
			binary.LittleEndian.Uint64(s0[i+16:]) ^ binary.LittleEndian.Uint64(s1[i+16:]) ^
			binary.LittleEndian.Uint64(s2[i+16:]) ^ binary.LittleEndian.Uint64(s3[i+16:]) ^
			binary.LittleEndian.Uint64(s4[i+16:]) ^ binary.LittleEndian.Uint64(s5[i+16:]) ^
			binary.LittleEndian.Uint64(s6[i+16:]) ^ binary.LittleEndian.Uint64(s7[i+16:])
		a3 := binary.LittleEndian.Uint64(dst[i+24:]) ^
			binary.LittleEndian.Uint64(s0[i+24:]) ^ binary.LittleEndian.Uint64(s1[i+24:]) ^
			binary.LittleEndian.Uint64(s2[i+24:]) ^ binary.LittleEndian.Uint64(s3[i+24:]) ^
			binary.LittleEndian.Uint64(s4[i+24:]) ^ binary.LittleEndian.Uint64(s5[i+24:]) ^
			binary.LittleEndian.Uint64(s6[i+24:]) ^ binary.LittleEndian.Uint64(s7[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], a0)
		binary.LittleEndian.PutUint64(dst[i+8:], a1)
		binary.LittleEndian.PutUint64(dst[i+16:], a2)
		binary.LittleEndian.PutUint64(dst[i+24:], a3)
	}
	for ; i < n; i++ {
		dst[i] ^= s0[i] ^ s1[i] ^ s2[i] ^ s3[i] ^ s4[i] ^ s5[i] ^ s6[i] ^ s7[i]
	}
}

func xorAddVec3(s0, s1, s2, dst []byte) {
	n := len(dst)
	s0, s1, s2 = s0[:n], s1[:n], s2[:n]
	i := 0
	for ; i+32 <= n; i += 32 {
		a0 := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(s0[i:]) ^
			binary.LittleEndian.Uint64(s1[i:]) ^ binary.LittleEndian.Uint64(s2[i:])
		a1 := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(s0[i+8:]) ^
			binary.LittleEndian.Uint64(s1[i+8:]) ^ binary.LittleEndian.Uint64(s2[i+8:])
		a2 := binary.LittleEndian.Uint64(dst[i+16:]) ^ binary.LittleEndian.Uint64(s0[i+16:]) ^
			binary.LittleEndian.Uint64(s1[i+16:]) ^ binary.LittleEndian.Uint64(s2[i+16:])
		a3 := binary.LittleEndian.Uint64(dst[i+24:]) ^ binary.LittleEndian.Uint64(s0[i+24:]) ^
			binary.LittleEndian.Uint64(s1[i+24:]) ^ binary.LittleEndian.Uint64(s2[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], a0)
		binary.LittleEndian.PutUint64(dst[i+8:], a1)
		binary.LittleEndian.PutUint64(dst[i+16:], a2)
		binary.LittleEndian.PutUint64(dst[i+24:], a3)
	}
	for ; i < n; i++ {
		dst[i] ^= s0[i] ^ s1[i] ^ s2[i]
	}
}

func xorVec4(s0, s1, s2, s3, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(s0[i:])^binary.LittleEndian.Uint64(s1[i:])^
				binary.LittleEndian.Uint64(s2[i:])^binary.LittleEndian.Uint64(s3[i:]))
	}
	for ; i < n; i++ {
		dst[i] = s0[i] ^ s1[i] ^ s2[i] ^ s3[i]
	}
}

func xorAddVec4(s0, s1, s2, s3, dst []byte) {
	n := len(dst)
	s0, s1, s2, s3 = s0[:n], s1[:n], s2[:n], s3[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(s0[i:])^binary.LittleEndian.Uint64(s1[i:])^
				binary.LittleEndian.Uint64(s2[i:])^binary.LittleEndian.Uint64(s3[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= s0[i] ^ s1[i] ^ s2[i] ^ s3[i]
	}
}

func xorVec2(s0, s1, dst []byte) {
	n := len(dst)
	s0, s1 = s0[:n], s1[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(s0[i:])^binary.LittleEndian.Uint64(s1[i:]))
	}
	for ; i < n; i++ {
		dst[i] = s0[i] ^ s1[i]
	}
}

func xorAddVec2(s0, s1, dst []byte) {
	n := len(dst)
	s0, s1 = s0[:n], s1[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(s0[i:])^binary.LittleEndian.Uint64(s1[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= s0[i] ^ s1[i]
	}
}
