module rain

go 1.21
