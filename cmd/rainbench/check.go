package main

// The benchmark-regression gate: `rainbench -record` turns `go test -bench`
// output into a committed baseline (BENCH_baseline.json), and `rainbench
// -check` compares a fresh run against it, failing when the geometric-mean
// throughput ratio across the benchmarks drops below the threshold. CI runs
// the check on every push; the geomean keeps one noisy microbenchmark from
// failing the build while a real regression — which moves many benchmarks
// or one benchmark a lot — still trips it.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: benchmark name (GOMAXPROCS suffix
// stripped) to throughput. Throughput is MB/s where the benchmark reports
// it, otherwise ops/s derived from ns/op — either way, bigger is better.
type Baseline struct {
	Note    string             `json:"note,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts per-benchmark throughput from `go test -bench`
// output. Repeated runs of one benchmark (-count N) collapse to their
// maximum — the least noise-contaminated observation.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		// rest is value/unit pairs: "123.4 ns/op 567.8 MB/s ...".
		var nsOp, mbs float64
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "ns/op":
				nsOp = v
			case "MB/s":
				mbs = v
			}
		}
		throughput := mbs
		if throughput == 0 && nsOp > 0 {
			throughput = 1e9 / nsOp // ops/s
		}
		if throughput > out[name] {
			out[name] = throughput
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	return out, nil
}

func openInput(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// runRecord writes the baseline file from a bench run.
func runRecord(baselinePath, inputPath, note string) error {
	in, err := openInput(inputPath)
	if err != nil {
		return err
	}
	defer in.Close()
	metrics, err := parseBench(in)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(Baseline{Note: note, Metrics: metrics}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(metrics), baselinePath)
	return nil
}

// runCheck compares a fresh bench run against the baseline: benchmarks in
// both contribute their current/baseline throughput ratio to a geometric
// mean, and a geomean below threshold fails. Benchmarks only on one side
// are reported but do not gate (benchmarks come and go across PRs).
func runCheck(baselinePath, inputPath string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	in, err := openInput(inputPath)
	if err != nil {
		return err
	}
	defer in.Close()
	current, err := parseBench(in)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var logSum float64
	compared := 0
	worstName, worstRatio := "", math.Inf(1)
	fmt.Printf("%-60s %12s %12s %8s\n", "benchmark", "baseline", "current", "ratio")
	for _, name := range names {
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-60s %12.1f %12s %8s\n", name, base.Metrics[name], "missing", "-")
			continue
		}
		ratio := cur / base.Metrics[name]
		fmt.Printf("%-60s %12.1f %12.1f %7.2fx\n", name, base.Metrics[name], cur, ratio)
		logSum += math.Log(ratio)
		compared++
		if ratio < worstRatio {
			worstName, worstRatio = name, ratio
		}
	}
	for name := range current {
		if _, ok := base.Metrics[name]; !ok {
			fmt.Printf("%-60s %12s %12.1f %8s  (new, not gated)\n", name, "-", current[name], "-")
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with the baseline")
	}
	geomean := math.Exp(logSum / float64(compared))
	fmt.Printf("\ngeomean throughput ratio over %d benchmarks: %.3fx (threshold %.2fx; worst %s at %.2fx)\n",
		compared, geomean, threshold, worstName, worstRatio)
	if geomean < threshold {
		return fmt.Errorf("benchmark regression: geomean ratio %.3f below threshold %.2f", geomean, threshold)
	}
	return nil
}
