// Command rainbench regenerates every table and figure of the RAIN paper
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Usage:
//
//	rainbench            # run every experiment
//	rainbench -list      # list experiment keys
//	rainbench -exp KEY   # run one experiment (e.g. -exp rainwall)
package main

import (
	"flag"
	"fmt"
	"os"

	"rain/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment key to run (default: all)")
	list := flag.Bool("list", false, "list experiment keys and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %-8s %s\n", e.Key, e.ID, e.Paper)
		}
		return
	}
	if *exp != "" {
		e, ok := bench.ByKey(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, bench.Keys())
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.RunAll(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
