// Command rainbench regenerates every table and figure of the RAIN paper
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Usage:
//
//	rainbench            # run every experiment
//	rainbench -list      # list experiment keys
//	rainbench -exp KEY   # run one experiment (e.g. -exp rainwall)
//
// It is also the CI benchmark-regression gate over `go test -bench` output:
//
//	go test -run '^$' -bench 'RS|StreamDecode|DStore|Array' -benchtime 3x -count 3 . > bench.txt
//	rainbench -record -baseline BENCH_baseline.json -input bench.txt   # refresh the committed baseline
//	rainbench -check  -baseline BENCH_baseline.json -input bench.txt   # fail on >25% geomean regression
package main

import (
	"flag"
	"fmt"
	"os"

	"rain/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment key to run (default: all)")
	list := flag.Bool("list", false, "list experiment keys and exit")
	check := flag.Bool("check", false, "compare -input bench output against -baseline and fail on regression")
	record := flag.Bool("record", false, "write -baseline from -input bench output")
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline file for -check / -record")
	input := flag.String("input", "-", "`go test -bench` output file for -check / -record (- = stdin)")
	threshold := flag.Float64("threshold", 0.75, "minimum geomean throughput ratio for -check")
	note := flag.String("note", "", "note stored in the baseline by -record")
	flag.Parse()

	if *record {
		if err := runRecord(*baseline, *input, *note); err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
		return
	}
	if *check {
		if err := runCheck(*baseline, *input, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "check:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %-8s %s\n", e.Key, e.ID, e.Paper)
		}
		return
	}
	if *exp != "" {
		e, ok := bench.ByKey(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, bench.Keys())
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.RunAll(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
