//go:build unix

package main

import (
	"encoding/json"
	"os"
	"os/signal"
	"syscall"

	"rain/internal/telemetry"
)

// watchDumpSignal dumps a full registry snapshot as JSON to stderr on
// SIGUSR1 — the no-listener escape hatch for inspecting a live node.
func watchDumpSignal(reg *telemetry.Registry) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reg.Snapshot()); err != nil {
				os.Stderr.WriteString("telemetry dump: " + err.Error() + "\n")
			}
		}
	}()
}
