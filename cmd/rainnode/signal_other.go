//go:build !unix

package main

import "rain/internal/telemetry"

// watchDumpSignal is a no-op on platforms without SIGUSR1.
func watchDumpSignal(*telemetry.Registry) {}
