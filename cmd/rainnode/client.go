// The gateway client subcommands: put/get/bench speak plain HTTP to any
// node's object gateway, so they double as living documentation of the wire
// surface — everything they do can be done with curl.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// runPutCmd stores stdin or a file through a gateway.
func runPutCmd(args []string) {
	fs := flag.NewFlagSet("rainnode put", flag.ExitOnError)
	gw := fs.String("gw", "http://127.0.0.1:8080", "gateway base URL")
	key := fs.String("key", "", "object key (required)")
	file := fs.String("file", "", "input file (default: stdin, buffered to size)")
	fs.Parse(args)
	if *key == "" {
		fmt.Fprintln(os.Stderr, "rainnode put: -key is required")
		os.Exit(2)
	}
	var body io.Reader
	var size int64
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode put:", err)
			os.Exit(1)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode put:", err)
			os.Exit(1)
		}
		body, size = f, st.Size()
	} else {
		// The gateway needs Content-Length up front (the erasure layout is
		// sized by it), so stdin is buffered.
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode put:", err)
			os.Exit(1)
		}
		body, size = bytes.NewReader(data), int64(len(data))
	}
	req, err := http.NewRequest(http.MethodPut, objURL(*gw, *key), body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode put:", err)
		os.Exit(1)
	}
	req.ContentLength = size
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode put:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "rainnode put: %s: %s", resp.Status, msg)
		os.Exit(1)
	}
	io.Copy(io.Discard, resp.Body)
	took := time.Since(start)
	fmt.Printf("stored %s: %d bytes in %v (%.1f MB/s), etag %s\n",
		*key, size, took.Round(time.Millisecond), mbps(size, took), resp.Header.Get("ETag"))
}

// runGetCmd fetches an object (optionally a byte range) through a gateway.
func runGetCmd(args []string) {
	fs := flag.NewFlagSet("rainnode get", flag.ExitOnError)
	gw := fs.String("gw", "http://127.0.0.1:8080", "gateway base URL")
	key := fs.String("key", "", "object key (required)")
	out := fs.String("out", "", "output file (default: stdout)")
	rng := fs.String("range", "", `byte range, e.g. "bytes=0-1048575" or "0-1048575"`)
	fs.Parse(args)
	if *key == "" {
		fmt.Fprintln(os.Stderr, "rainnode get: -key is required")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode get:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	req, err := http.NewRequest(http.MethodGet, objURL(*gw, *key), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode get:", err)
		os.Exit(1)
	}
	if *rng != "" {
		h := *rng
		if !strings.HasPrefix(h, "bytes=") {
			h = "bytes=" + h
		}
		req.Header.Set("Range", h)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode get:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		msg, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "rainnode get: %s: %s", resp.Status, msg)
		os.Exit(1)
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode get:", err)
		os.Exit(1)
	}
	took := time.Since(start)
	fmt.Fprintf(os.Stderr, "fetched %s: %d bytes in %v (%.1f MB/s)\n",
		*key, n, took.Round(time.Millisecond), mbps(n, took))
}

// runBenchCmd measures gateway PUT/GET throughput: n round trips of one
// object, each PUT followed by a full GET that is checked bit-exact.
func runBenchCmd(args []string) {
	fs := flag.NewFlagSet("rainnode bench", flag.ExitOnError)
	gw := fs.String("gw", "http://127.0.0.1:8080", "gateway base URL")
	key := fs.String("key", "bench", "object key to churn")
	size := fs.Int64("size", 1<<20, "object size in bytes")
	n := fs.Int("n", 32, "round trips")
	fs.Parse(args)

	data := make([]byte, *size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var putNS, getNS int64
	for i := 0; i < *n; i++ {
		req, err := http.NewRequest(http.MethodPut, objURL(*gw, *key), bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode bench:", err)
			os.Exit(1)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode bench: put:", err)
			os.Exit(1)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintln(os.Stderr, "rainnode bench: put:", resp.Status)
			os.Exit(1)
		}
		putNS += time.Since(start).Nanoseconds()

		start = time.Now()
		resp, err = http.Get(objURL(*gw, *key))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainnode bench: get:", err)
			os.Exit(1)
		}
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "rainnode bench: get: %s %v\n", resp.Status, rerr)
			os.Exit(1)
		}
		if !bytes.Equal(got, data) {
			fmt.Fprintln(os.Stderr, "rainnode bench: round trip corrupted")
			os.Exit(1)
		}
		getNS += time.Since(start).Nanoseconds()
	}
	total := int64(*n) * *size
	fmt.Printf("%d x %d bytes: put %.1f MB/s, get %.1f MB/s\n",
		*n, *size, mbps(total, time.Duration(putNS)), mbps(total, time.Duration(getNS)))
}

func objURL(gw, key string) string {
	return strings.TrimSuffix(gw, "/") + "/o/" + key
}

func mbps(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}
