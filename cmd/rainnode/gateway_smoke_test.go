package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGatewayClusterSmoke is the end-to-end proof of the PR's surface: three
// `rainnode serve` processes on real UDP loopback sockets form a cluster
// (mesh handshakes, token membership, election, self-heal), objects round
// trip bit-exact through any node's HTTP gateway — whole, ranged and
// deleted — and the cluster keeps serving while one node is SIGKILLed and
// rejoins. Gated on RAIN_GW_SMOKE because it binds dozens of real sockets
// and shells out to the toolchain; CI runs it as the gateway e2e job.
func TestGatewayClusterSmoke(t *testing.T) {
	if os.Getenv("RAIN_GW_SMOKE") == "" {
		t.Skip("set RAIN_GW_SMOKE=1 to run the rainnode gateway cluster smoke test")
	}
	bin := filepath.Join(t.TempDir(), "rainnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Every node gets two bundled UDP paths and one HTTP port, reserved up
	// front so the peer book can be complete and static: ephemeral-port
	// discovery cannot introduce b and c to each other before they have
	// spoken to the seed.
	names := []string{"a", "b", "c"}
	udp := make(map[string][]string)
	httpAddr := make(map[string]string)
	dir := make(map[string]string)
	var bookEnts []string
	for _, n := range names {
		udp[n] = []string{
			fmt.Sprintf("127.0.0.1:%d", freePort(t, "udp")),
			fmt.Sprintf("127.0.0.1:%d", freePort(t, "udp")),
		}
		httpAddr[n] = fmt.Sprintf("127.0.0.1:%d", freePort(t, "tcp"))
		dir[n] = filepath.Join(t.TempDir(), n)
		bookEnts = append(bookEnts, n+"="+strings.Join(udp[n], "|"))
	}
	book := strings.Join(bookEnts, ",")

	start := func(n string) *exec.Cmd {
		cmd := exec.Command(bin, "serve",
			"-name", n,
			"-ring", strings.Join(names, ","),
			"-local", strings.Join(udp[n], ","),
			"-peers", book,
			"-dir", dir[n],
			"-http", httpAddr[n])
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	procs := map[string]*exec.Cmd{}
	for _, n := range names {
		procs[n] = start(n)
	}
	defer func() {
		for _, cmd := range procs {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	gw := func(n string) string { return "http://" + httpAddr[n] }
	client := &http.Client{Timeout: 30 * time.Second}
	put := func(n, key string, body []byte) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPut, gw(n)+"/o/"+key, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	}
	get := func(n, key, rng string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(http.MethodGet, gw(n)+"/o/"+key, nil)
		if err != nil {
			return nil, nil, err
		}
		if rng != "" {
			req.Header.Set("Range", rng)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	// The cluster is up when a probe PUT commits: membership has assembled a
	// full view, so the seed's client can reach a write quorum.
	readyBy := time.Now().Add(30 * time.Second)
	for {
		resp, err := put("a", "probe", []byte("ready?"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyBy) {
			t.Fatalf("cluster never became ready: last err %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Bit-exact round trip across distinct gateways: PUT through a, ranged
	// and whole GETs through b, DELETE through c.
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(data)
	resp, err := put("a", "movie", data)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put movie: %s", resp.Status)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("put response has no ETag")
	}
	resp, body, err := get("b", "movie", "")
	if err != nil || resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("whole get via b: status %v err %v exact=%v", resp.Status, err, bytes.Equal(body, data))
	}
	resp, body, err = get("b", "movie", "bytes=65535-131073")
	if err != nil || resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[65535:131074]) {
		t.Fatalf("ranged get via b: status %v err %v", resp.Status, err)
	}
	req, _ := http.NewRequest(http.MethodDelete, gw("c")+"/o/movie", nil)
	if resp, err := client.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete via c: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if resp, _, err := get("a", "movie", ""); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %v err %v", resp.Status, err)
	}

	// The debug surface exports the gateway route families next to the rest
	// of the stack's metrics.
	metrics := string(fetchEventually(t, gw("a")+"/debug/metrics", 5*time.Second))
	for _, fam := range []string{"rain_gateway_put_requests", "rain_gateway_get_requests", "rain_gateway_delete_requests", "rain_gateway_admission_inflight_bytes"} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/debug/metrics is missing %s", fam)
		}
	}

	// Kill-and-rejoin under load: concurrent PUTs through a and GETs (whole
	// and ranged) through b must all succeed while c is SIGKILLed and later
	// restarted — rs(3,2) keeps both quorums at two nodes, stalled shard
	// streams hedge to the survivor, and membership evicts the corpse.
	if resp, err := put("a", "kr", data); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("put kr: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: fresh objects through a
		defer wg.Done()
		chunk := data[:128<<10]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := put("a", fmt.Sprintf("load-%d", i%4), chunk)
			if err != nil {
				fail("load put: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("load put: %s", resp.Status)
				return
			}
		}
	}()
	go func() { // reader: whole and ranged GETs through b
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rng, want := "", data
			if i%2 == 1 {
				rng, want = "bytes=131071-262145", data[131071:262146]
			}
			resp, body, err := get("b", "kr", rng)
			if err != nil {
				fail("load get: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
				fail("load get: %s", resp.Status)
				return
			}
			if !bytes.Equal(body, want) {
				fail("load get: body mismatch (%d bytes, want %d)", len(body), len(want))
				return
			}
		}
	}()

	time.Sleep(1 * time.Second)
	procs["c"].Process.Kill()
	procs["c"].Wait()
	t.Log("killed c under load")
	time.Sleep(4 * time.Second)
	procs["c"] = start("c")
	t.Log("restarted c")
	// c has rejoined when its own gateway serves the object bit-exact: its
	// membership view readmitted the holders and its client reads a quorum.
	rejoinBy := time.Now().Add(30 * time.Second)
	for {
		resp, body, err := get("c", "kr", "")
		if err == nil && resp.StatusCode == http.StatusOK && bytes.Equal(body, data) {
			break
		}
		if time.Now().After(rejoinBy) {
			t.Errorf("c never rejoined: last status %v err %v", resp, err)
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client requests failed across the kill/rejoin window, want 0", n)
	}

	// The full inventory survived: every load object still reads bit-exact
	// through the rejoined node's gateway.
	for i := 0; i < 4; i++ {
		resp, body, err := get("c", fmt.Sprintf("load-%d", i), "")
		if err != nil || resp.StatusCode != http.StatusOK || !bytes.Equal(body, data[:128<<10]) {
			t.Errorf("load-%d via rejoined c: status %v err %v", i, resp.Status, err)
		}
	}
}
