package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rain/internal/storage"
)

// runScrubCmd is the offline integrity pass: it walks a node's shard
// directory and verifies every committed shard file against the checksum
// footer the backend wrote at commit time — the same CRCs the online scrub
// and the read path verify — without needing the node up. A shard that
// fails leaves the store unchanged (quarantining is the live backend's
// job); the command reports and exits nonzero so an operator or cron job
// can act before the node next serves the bytes.
func runScrubCmd(args []string) {
	fs := flag.NewFlagSet("rainnode scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "node shard directory (the serve -store-dir)")
	verbose := fs.Bool("v", false, "print every shard verified, not just failures")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rainnode scrub: -dir is required")
		os.Exit(2)
	}

	shards, err := filepath.Glob(filepath.Join(*dir, "*.shard"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rainnode scrub: %v\n", err)
		os.Exit(2)
	}
	quarantined, _ := filepath.Glob(filepath.Join(*dir, "*.quarantine"))

	var files, blocks int
	var bytes int64
	var corrupt, unchecked []string
	for _, path := range shards {
		payload, n, verr := storage.VerifyShardFile(path)
		name := shardName(path)
		switch {
		case verr == nil:
			files++
			blocks += n
			bytes += payload
			if *verbose {
				fmt.Printf("ok       %s  %d bytes, %d blocks\n", name, payload, n)
			}
		case errors.Is(verr, storage.ErrNoChecksum):
			// A pre-checksum shard (or foreign file): nothing to verify
			// against, which is worth telling the operator about.
			unchecked = append(unchecked, name)
			fmt.Printf("no-sums  %s\n", name)
		default:
			corrupt = append(corrupt, name)
			fmt.Printf("CORRUPT  %s  %v\n", name, verr)
		}
	}

	fmt.Printf("scrub %s: %d shards ok (%d bytes, %d blocks), %d corrupt, %d unchecked, %d already quarantined\n",
		*dir, files, bytes, blocks, len(corrupt), len(unchecked), len(quarantined))
	if len(corrupt) > 0 {
		os.Exit(1)
	}
}

// shardName renders a shard file name back to its object id where the
// hex round-trips, falling back to the file name.
func shardName(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), ".shard")
	if id, err := hex.DecodeString(base); err == nil {
		return string(id)
	}
	return filepath.Base(path)
}
