// Command rainnode runs one end of a RAIN communication channel over real
// UDP sockets: the RUDP reliable datagram protocol with bundled interfaces
// and consistent-history path monitoring, entirely in user space (§2.5).
//
// Start a receiver, then a sender (addresses are comma-separated, one per
// bundled path):
//
//	rainnode -local 127.0.0.1:7000,127.0.0.1:7001 \
//	         -remote 127.0.0.1:7100,127.0.0.1:7101
//	rainnode -local 127.0.0.1:7100,127.0.0.1:7101 \
//	         -remote 127.0.0.1:7000,127.0.0.1:7001 -send 100
//
// While the sender runs, drop one of the two paths with a firewall rule (or
// by unplugging the interface) and watch the traffic fail over; drop both
// and it stalls until one heals — the behaviour the paper demonstrated by
// pulling Myrinet cables.
//
// The channel can also carry the dstore storage protocol. Run a storage
// daemon on one end and push/pull shards from the other:
//
//	rainnode -local ... -remote ... -store -shard 0
//	rainnode -local ... -remote ... -putshard obj -file shard.bin
//	rainnode -local ... -remote ... -getshard obj -out shard.bin
//
// Whole objects stream with bounded memory in both directions: -putobj
// reads the file chunk by chunk under the put window, and -getobj is a
// credit-windowed streaming fetch written straight to stdout (or -out),
// acking each chunk as it is consumed — the same flow control the cluster's
// GetStream path uses, over real UDP. The daemon stores the object as a
// replica shard (the k=1 layout, whose shard stream is the object itself);
// erasure-coded k-of-n streaming lives in the library (rain.Cluster):
//
//	rainnode -local ... -remote ... -putobj movie -file movie.mp4
//	rainnode -local ... -remote ... -getobj movie > copy.mp4
//
// With -elect, each end runs the leader-election engine over the channel and
// logs leader transitions: the smaller -name leads while both ends hear each
// other, the survivor takes over when the paths die, and leadership returns
// at a higher epoch on heal — the signal the self-healing control loop keys
// repairs off:
//
//	rainnode -local ... -remote ... -elect -name a -peer b
//	rainnode -local ... -remote ... -elect -name b -peer a
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"rain/internal/dstore"
	"rain/internal/election"
	"rain/internal/netbuf"
	"rain/internal/rudp"
	"rain/internal/storage"
	"rain/internal/telemetry"
)

func main() {
	local := flag.String("local", "", "comma-separated local addresses, one per path")
	remote := flag.String("remote", "", "comma-separated remote addresses, one per path")
	send := flag.Int("send", 0, "number of datagrams to send (0 = receive only)")
	size := flag.Int("size", 1024, "payload size in bytes")
	interval := flag.Duration("report", time.Second, "status report interval")
	store := flag.Bool("store", false, "run a dstore storage daemon on this end")
	shard := flag.Int("shard", 0, "shard index this daemon holds (-store)")
	putShard := flag.String("putshard", "", "store the -file bytes as this object's shard on the remote daemon")
	getShard := flag.String("getshard", "", "fetch this object's shard from the remote daemon")
	putObj := flag.String("putobj", "", "stream the -file bytes to the remote daemon as a whole object (bounded memory)")
	getObj := flag.String("getobj", "", "stream this object from the remote daemon to stdout (bounded memory)")
	block := flag.Int("block", dstore.DefaultBlockSize, "block-codeword size recorded for -putobj")
	file := flag.String("file", "", "input file for -putshard / -putobj")
	out := flag.String("out", "", "output file for -getshard / -getobj (default: shard summary / stdout)")
	debug := flag.String("debug", "", "listen address for the /debug telemetry surface (e.g. :6060)")
	elect := flag.Bool("elect", false, "run a leader-election node over the channel, logging leader transitions")
	name := flag.String("name", "", "this node's election identity (-elect)")
	peer := flag.String("peer", "", "the remote end's election identity (-elect)")
	flag.Parse()

	if *local == "" || *remote == "" {
		fmt.Fprintln(os.Stderr, "both -local and -remote are required")
		os.Exit(2)
	}
	locals := strings.Split(*local, ",")
	remotes := strings.Split(*remote, ",")

	// The live observability surface: the process-wide registry every layer
	// (rudp, netbuf, storage, dstore) reports into, plus the trace ring. The
	// full dstore schema is pre-registered so /debug/metrics exports every
	// family — zero-valued included — whatever subset this invocation runs.
	reg := telemetry.Default()
	dstore.RegisterMetrics(reg, "local")
	if *debug != "" {
		go func() {
			srv := &http.Server{Addr: *debug, Handler: telemetry.Handler(reg, telemetry.DefaultTracer())}
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "debug listener:", err)
			}
		}()
		fmt.Println("debug surface on", *debug)
	}
	// SIGUSR1 dumps a registry snapshot to stderr (no-op where unsupported).
	watchDumpSignal(reg)

	ch := newUDPChannel()
	received := 0
	node, err := rudp.NewUDPNode(locals, rudp.Config{}, func(p []byte) {
		received++
		ch.deliver(p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bind:", err)
		os.Exit(1)
	}
	defer node.Close()
	if err := node.Connect(remotes); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	ch.node = node
	go ch.dispatchLoop()
	fmt.Println("rainnode up on", node.LocalAddrs(), "->", remotes)

	if *elect {
		runElection(ch, *name, *peer, *interval)
		return
	}
	if *store {
		runDaemon(ch, node, *shard, *interval)
		return
	}
	// -putshard and -getshard may be combined in one invocation; RUDP
	// connection state is per process, so a restarted client needs a
	// restarted daemon (crash-restart handshakes are the membership
	// layer's business, per §3).
	if *putShard != "" || *getShard != "" || *putObj != "" || *getObj != "" {
		if *putShard != "" {
			if err := runPutShard(ch, *putShard, *file); err != nil {
				fmt.Fprintln(os.Stderr, "putshard:", err)
				os.Exit(1)
			}
		}
		if *putObj != "" {
			if err := runPutObj(ch, *putObj, *file, *block); err != nil {
				fmt.Fprintln(os.Stderr, "putobj:", err)
				os.Exit(1)
			}
		}
		if *getShard != "" {
			if err := runGetShard(ch, *getShard, *out); err != nil {
				fmt.Fprintln(os.Stderr, "getshard:", err)
				os.Exit(1)
			}
		}
		if *getObj != "" {
			if err := runGetObj(ch, *getObj, *out); err != nil {
				fmt.Fprintln(os.Stderr, "getobj:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *send > 0 {
		payload := make([]byte, *size)
		for i := 0; i < *send; i++ {
			node.Send(payload)
		}
		fmt.Printf("queued %d datagrams of %d bytes\n", *send, *size)
	}

	for {
		time.Sleep(*interval)
		var paths []string
		for i := range locals {
			paths = append(paths, fmt.Sprintf("path%d=%s", i, node.PathStatus(i)))
		}
		st := node.Stats()
		fmt.Printf("%s recv=%d sent=%d retx=%d backlog=%d failovers=%d\n",
			strings.Join(paths, " "), received, st.Sent, st.Retransmits, node.Backlog(), st.FailoverSends)
		if *send > 0 && node.Backlog() == 0 {
			fmt.Println("all datagrams acknowledged")
			return
		}
	}
}

// udpChannel adapts the point-to-point UDP channel to the dstore.Mesh
// interface: the local end is node "local", the remote end is "remote".
// Deliveries are queued and dispatched on a dedicated goroutine because the
// UDPNode invokes its deliver callback while holding the connection lock —
// replying inline would deadlock. The queue is unbounded: RUDP has already
// delivered these datagrams reliably and will not retransmit, so dropping
// here would lose them for good (and blocking the receive path against the
// dispatcher, which takes the same lock to reply, could deadlock).
type udpChannel struct {
	node *rudp.UDPNode

	mu       sync.Mutex
	cond     *sync.Cond
	handlers map[string]func(from string, payload []byte)
	queue    [][]byte
}

func newUDPChannel() *udpChannel {
	c := &udpChannel{handlers: make(map[string]func(string, []byte))}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *udpChannel) Handle(node, service string, fn func(from string, payload []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers[service] = fn
}

func (c *udpChannel) SendService(from, to, service string, payload []byte) {
	c.node.Send(rudp.FrameService(service, payload))
}

// SendFrame is the zero-copy SendService: the frame already carries the
// marshaled message, so only the service header is pushed before handing the
// buffer to the connection.
func (c *udpChannel) SendFrame(from, to, service string, f *netbuf.Frame) {
	rudp.PushService(f, service)
	c.node.SendFrame(f)
}

func (c *udpChannel) deliver(p []byte) {
	buf := append([]byte(nil), p...)
	c.mu.Lock()
	c.queue = append(c.queue, buf)
	c.cond.Signal()
	c.mu.Unlock()
}

func (c *udpChannel) dispatchLoop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 {
			c.cond.Wait()
		}
		p := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		service, payload, ok := rudp.SplitService(p)
		if !ok {
			continue
		}
		c.mu.Lock()
		h := c.handlers[service]
		c.mu.Unlock()
		if h != nil {
			h("remote", payload)
		}
	}
}

// electBacklogCap mirrors the simulated mesh's heartbeat backlog cap: the
// channel is reliable, so heartbeats queued toward a dead peer would grow
// without bound — skip beats while the queue is deep.
const electBacklogCap = 8

// runElection drives one election engine over the real-UDP channel: the
// same heartbeat wire format and smallest-identity rule as the simulated
// mesh, logging every leader transition as it happens — the mechanism a
// deployed pair uses to decide which end coordinates repairs. Pull the
// cables and the survivor takes over; heal them and the smaller identity
// wins leadership back at a higher epoch.
func runElection(ch *udpChannel, name, peer string, interval time.Duration) {
	if name == "" || peer == "" {
		fmt.Fprintln(os.Stderr, "-elect requires -name and -peer")
		os.Exit(2)
	}
	var mu sync.Mutex
	n := election.NewNode(name, []string{peer}, election.Config{})
	n.OnLeaderChange(func(leader string, epoch uint64) {
		fmt.Printf("%s leader transition: %s leads at epoch %d\n",
			time.Now().Format(time.RFC3339Nano), leader, epoch)
	})
	// Heartbeats arrive on the dispatch goroutine while the tick loop runs
	// here, so the engine is driven under one lock.
	ch.Handle("local", election.Service, func(from string, payload []byte) {
		if hb, ok := election.UnmarshalHeartbeat(payload); ok {
			mu.Lock()
			n.OnHeartbeat(hb, time.Now().UnixNano())
			mu.Unlock()
		}
	})
	fmt.Printf("election node %q up against %q\n", name, peer)
	tick := time.NewTicker(20 * time.Millisecond)
	report := time.NewTicker(interval)
	defer tick.Stop()
	defer report.Stop()
	for {
		select {
		case <-tick.C:
			mu.Lock()
			hb := n.Tick(time.Now().UnixNano())
			mu.Unlock()
			if ch.node.Backlog() < electBacklogCap {
				ch.SendService("local", "remote", election.Service, election.MarshalHeartbeat(hb))
			}
		case <-report.C:
			mu.Lock()
			leader, epoch := n.Leader(), n.Epoch()
			mu.Unlock()
			fmt.Printf("leader=%s epoch=%d backlog=%d\n", leader, epoch, ch.node.Backlog())
		}
	}
}

// runDaemon serves the dstore protocol until interrupted.
func runDaemon(ch *udpChannel, node *rudp.UDPNode, shard int, interval time.Duration) {
	backend := storage.NewBackend(telemetry.Default().Node("local"))
	d := dstore.NewDaemon(ch, "local", shard, backend, 0)
	fmt.Printf("storage daemon up, shard %d\n", shard)
	for {
		time.Sleep(interval)
		st := d.Stats()
		reads, writes := backend.Loads()
		fmt.Printf("objects=%d reads=%d writes=%d commits=%d chunks_in=%d chunks_out=%d backlog=%d\n",
			backend.Objects(), reads, writes, st.Commits, st.ChunksStored, st.ChunksServed, node.Backlog())
	}
}

// runPutShard streams one file to the remote daemon as a shard.
func runPutShard(ch *udpChannel, id, path string) error {
	if path == "" {
		return fmt.Errorf("-putshard requires -file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	acks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			acks <- m
		}
	})
	const chunk = dstore.DefaultChunkSize
	for off := 0; off < len(data) || off == 0; off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
			Kind:     dstore.KindPutChunk,
			Req:      1,
			ID:       id,
			Shard:    -1, // the daemon's configured index applies
			Off:      int64(off),
			ShardLen: int64(len(data)),
			DataLen:  storage.UnknownSize,
			Data:     data[off:end],
		}.Marshal())
		if end == len(data) {
			break
		}
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case m := <-acks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off >= int64(len(data)) {
				fmt.Printf("stored %s: %d bytes\n", id, len(data))
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for acks")
		}
	}
}

// runPutObj streams a file to the remote daemon as a whole-object replica
// shard (the k=1 block layout: the shard stream is the object itself),
// reading and sending chunk by chunk under the put window so memory stays
// bounded regardless of file size.
func runPutObj(ch *udpChannel, id, path string, block int) error {
	if path == "" {
		return fmt.Errorf("-putobj requires -file")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	acks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			acks <- m
		}
	})
	const chunk = dstore.DefaultChunkSize
	const window = int64(dstore.DefaultWindow) * chunk
	buf := make([]byte, chunk)
	var sent, acked int64
	deadline := time.After(10 * time.Minute)
	for acked < size || size == 0 {
		for sent < size && sent-acked < window {
			n, err := io.ReadFull(f, buf[:min(int64(chunk), size-sent)])
			if err != nil {
				return fmt.Errorf("reading %s at %d: %w", path, sent, err)
			}
			ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
				Kind:     dstore.KindPutChunk,
				Req:      2,
				ID:       id,
				Shard:    -1, // the daemon's configured index applies
				Off:      sent,
				ShardLen: size,
				DataLen:  size,
				BlockLen: int64(block),
				Data:     buf[:n],
			}.Marshal())
			sent += int64(n)
		}
		if size == 0 {
			// Metadata-only commit for an empty object.
			ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
				Kind: dstore.KindPutChunk, Req: 2, ID: id, Shard: -1, DataLen: 0, BlockLen: int64(block),
			}.Marshal())
		}
		select {
		case m := <-acks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off > acked {
				acked = m.Off
			}
			if size == 0 {
				fmt.Printf("stored %s: 0 bytes\n", id)
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for acks (%d of %d acked)", acked, size)
		}
	}
	fmt.Printf("stored %s: %d bytes\n", id, size)
	return nil
}

// runGetObj streams an object from the remote daemon to stdout (or -out)
// with credit-windowed flow control: each chunk is written as it arrives and
// acked as consumed, so memory stays bounded by the window however large the
// object — the -getobj half of the streaming contract over real sockets.
func runGetObj(ch *udpChannel, id, outPath string) error {
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	chunks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			chunks <- m
		}
	})
	const win = int32(dstore.DefaultWindow)
	ch.SendService("local", "remote", dstore.ServiceDaemon,
		dstore.Msg{Kind: dstore.KindGetReq, Req: 3, ID: id, Win: win}.Marshal())
	var got int64
	total := int64(-1)
	deadline := time.After(10 * time.Minute)
	for total < 0 || got < total {
		select {
		case m := <-chunks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off != got {
				return fmt.Errorf("chunk at %d, expected %d", m.Off, got)
			}
			total = m.ShardLen
			if _, err := w.Write(m.Data); err != nil {
				return err
			}
			got += int64(len(m.Data))
			ch.SendService("local", "remote", dstore.ServiceDaemon,
				dstore.Msg{Kind: dstore.KindGetAck, Req: 3, ID: id, Off: got, Win: win}.Marshal())
		case <-deadline:
			return fmt.Errorf("timed out waiting for chunks (%d of %d)", got, total)
		}
	}
	fmt.Fprintf(os.Stderr, "fetched %s: %d bytes\n", id, got)
	return nil
}

// runGetShard fetches one shard from the remote daemon.
func runGetShard(ch *udpChannel, id, outPath string) error {
	chunks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			chunks <- m
		}
	})
	ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{Kind: dstore.KindGetReq, Req: 1, ID: id}.Marshal())
	var buf []byte
	deadline := time.After(30 * time.Second)
	for {
		select {
		case m := <-chunks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off != int64(len(buf)) {
				return fmt.Errorf("chunk at %d, expected %d", m.Off, len(buf))
			}
			buf = append(buf, m.Data...)
			if int64(len(buf)) >= m.ShardLen {
				if outPath != "" {
					if err := os.WriteFile(outPath, buf, 0o644); err != nil {
						return err
					}
				}
				fmt.Printf("fetched %s: %d bytes (object size %d)\n", id, len(buf), m.DataLen)
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for chunks")
		}
	}
}
