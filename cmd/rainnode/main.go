// Command rainnode is one RAIN cluster process and its tooling, behind
// subcommands:
//
//	rainnode serve   run one cluster node: the dial-by-address UDP mesh,
//	                 storage daemon, membership, election, self-heal and the
//	                 HTTP object gateway, all from a single config
//	rainnode put     store stdin or a file through a gateway
//	rainnode get     fetch an object (optionally a byte range) from a gateway
//	rainnode elect   the two-node leader-election demo over a UDP channel
//	rainnode bench   measure gateway PUT/GET throughput
//
// A three-node cluster on loopback (each node bundles two paths):
//
//	rainnode serve -name a -ring a,b,c -local 127.0.0.1:7000,127.0.0.1:7001 -http :8080
//	rainnode serve -name b -ring a,b,c -local 127.0.0.1:7010,127.0.0.1:7011 \
//	               -peers a=127.0.0.1:7000|127.0.0.1:7001 -http :8081
//	rainnode serve -name c -ring a,b,c -local 127.0.0.1:7020,127.0.0.1:7021 \
//	               -peers a=127.0.0.1:7000|127.0.0.1:7001 -http :8082
//	rainnode put -gw http://127.0.0.1:8080 -key movie -file movie.mp4
//	rainnode get -gw http://127.0.0.1:8081 -key movie -range bytes=0-1048575
//
// The original flag-style invocation (no subcommand) still runs the
// point-to-point RUDP channel tool — reliable datagrams over bundled
// interfaces with consistent-history path monitoring (§2.5), a single
// storage daemon, shard/object transfer, and the channel election demo:
//
//	rainnode -local 127.0.0.1:7000,127.0.0.1:7001 \
//	         -remote 127.0.0.1:7100,127.0.0.1:7101
//	rainnode -local ... -remote ... -send 100
//	rainnode -local ... -remote ... -store -debug :6060
//	rainnode -local ... -remote ... -putobj movie -file movie.mp4
//	rainnode -local ... -remote ... -getobj movie > copy.mp4
//
// While a sender runs, drop one of the two paths with a firewall rule and
// watch the traffic fail over; drop both and it stalls until one heals — the
// behaviour the paper demonstrated by pulling Myrinet cables.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"rain/internal/dstore"
	"rain/internal/election"
	"rain/internal/netbuf"
	"rain/internal/rudp"
	"rain/internal/storage"
	"rain/internal/telemetry"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, rest := args[0], args[1:]
		switch cmd {
		case "serve":
			runServe(rest)
		case "put":
			runPutCmd(rest)
		case "get":
			runGetCmd(rest)
		case "elect":
			runElectCmd(rest)
		case "bench":
			runBenchCmd(rest)
		case "scrub":
			runScrubCmd(rest)
		case "help":
			usage(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "rainnode: unknown command %q\n\n", cmd)
			usage(os.Stderr)
			os.Exit(2)
		}
		return
	}
	if len(args) > 0 {
		fmt.Fprintln(os.Stderr,
			"rainnode: flag-style invocation is deprecated; see `rainnode help` for the serve/put/get/elect/bench subcommands")
	}
	runLegacy(args)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `rainnode — one RAIN cluster process and its tooling

Usage:

  rainnode serve -name a -ring a,b,c -local addr[,addr] [flags]
      run one cluster node: UDP mesh, storage daemon, membership, election,
      self-heal and the HTTP object gateway, from a single config
  rainnode put -gw http://host:8080 -key k [-file path]
      store stdin or a file through a gateway
  rainnode get -gw http://host:8080 -key k [-out path] [-range bytes=a-b]
      fetch an object (optionally a byte range) through a gateway
  rainnode elect -local addr[,addr] -remote addr[,addr] -name a -peer b
      run the two-node leader-election demo over a real UDP channel
  rainnode bench -gw http://host:8080 [-size n] [-n iters]
      measure gateway PUT/GET throughput
  rainnode scrub -dir path [-v]
      verify every shard file in a node's store directory against its
      checksum footer, offline; exits 1 if any shard is corrupt
  rainnode help
      print this text

Running with bare flags and no subcommand is deprecated but still drives the
original point-to-point channel tool (rainnode -h lists its flags).
`)
}

// runLegacy is the original rainnode: a point-to-point RUDP channel with the
// optional single-daemon store, shard/object transfer and election demo. It
// keeps the historical flag surface so existing invocations and the smoke
// tests stay valid.
func runLegacy(args []string) {
	fs := flag.NewFlagSet("rainnode", flag.ExitOnError)
	local := fs.String("local", "", "comma-separated local addresses, one per path")
	remote := fs.String("remote", "", "comma-separated remote addresses, one per path")
	send := fs.Int("send", 0, "number of datagrams to send (0 = receive only)")
	size := fs.Int("size", 1024, "payload size in bytes")
	interval := fs.Duration("report", time.Second, "status report interval")
	store := fs.Bool("store", false, "run a dstore storage daemon on this end")
	shard := fs.Int("shard", 0, "shard index this daemon holds (-store)")
	putShard := fs.String("putshard", "", "store the -file bytes as this object's shard on the remote daemon")
	getShard := fs.String("getshard", "", "fetch this object's shard from the remote daemon")
	putObj := fs.String("putobj", "", "stream the -file bytes to the remote daemon as a whole object (bounded memory)")
	getObj := fs.String("getobj", "", "stream this object from the remote daemon to stdout (bounded memory)")
	block := fs.Int("block", dstore.DefaultBlockSize, "block-codeword size recorded for -putobj")
	file := fs.String("file", "", "input file for -putshard / -putobj")
	out := fs.String("out", "", "output file for -getshard / -getobj (default: shard summary / stdout)")
	debug := fs.String("debug", "", "listen address for the /debug telemetry surface (e.g. :6060)")
	elect := fs.Bool("elect", false, "run a leader-election node over the channel, logging leader transitions")
	name := fs.String("name", "", "this node's election identity (-elect)")
	peer := fs.String("peer", "", "the remote end's election identity (-elect)")
	fs.Parse(args)

	if *local == "" || *remote == "" {
		fmt.Fprintln(os.Stderr, "both -local and -remote are required")
		os.Exit(2)
	}
	locals := strings.Split(*local, ",")
	remotes := strings.Split(*remote, ",")

	// The live observability surface: the process-wide registry every layer
	// (rudp, netbuf, storage, dstore) reports into, plus the trace ring. The
	// full dstore schema is pre-registered so /debug/metrics exports every
	// family — zero-valued included — whatever subset this invocation runs.
	reg := telemetry.Default()
	dstore.RegisterMetrics(reg, "local")
	if *debug != "" {
		go func() {
			srv := &http.Server{Addr: *debug, Handler: telemetry.Handler(reg, telemetry.DefaultTracer())}
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "debug listener:", err)
			}
		}()
		fmt.Println("debug surface on", *debug)
	}
	// SIGUSR1 dumps a registry snapshot to stderr (no-op where unsupported).
	watchDumpSignal(reg)

	ch := newUDPChannel()
	received := 0
	node, err := rudp.NewUDPNode(locals, rudp.Config{}, func(p []byte) {
		received++
		ch.deliver(p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bind:", err)
		os.Exit(1)
	}
	defer node.Close()
	if err := node.Connect(remotes); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	ch.node = node
	go ch.dispatchLoop()
	fmt.Println("rainnode up on", node.LocalAddrs(), "->", remotes)

	if *elect {
		runElection(ch, *name, *peer, *interval)
		return
	}
	if *store {
		runDaemon(ch, node, *shard, *interval)
		return
	}
	// -putshard and -getshard may be combined in one invocation; RUDP
	// connection state is per process, so a restarted client needs a
	// restarted daemon (crash-restart handshakes are the membership
	// layer's business, per §3).
	if *putShard != "" || *getShard != "" || *putObj != "" || *getObj != "" {
		if *putShard != "" {
			if err := runPutShard(ch, *putShard, *file); err != nil {
				fmt.Fprintln(os.Stderr, "putshard:", err)
				os.Exit(1)
			}
		}
		if *putObj != "" {
			if err := runPutObj(ch, *putObj, *file, *block); err != nil {
				fmt.Fprintln(os.Stderr, "putobj:", err)
				os.Exit(1)
			}
		}
		if *getShard != "" {
			if err := runGetShard(ch, *getShard, *out); err != nil {
				fmt.Fprintln(os.Stderr, "getshard:", err)
				os.Exit(1)
			}
		}
		if *getObj != "" {
			if err := runGetObj(ch, *getObj, *out); err != nil {
				fmt.Fprintln(os.Stderr, "getobj:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *send > 0 {
		payload := make([]byte, *size)
		for i := 0; i < *send; i++ {
			node.Send(payload)
		}
		fmt.Printf("queued %d datagrams of %d bytes\n", *send, *size)
	}

	for {
		time.Sleep(*interval)
		var paths []string
		for i := range locals {
			paths = append(paths, fmt.Sprintf("path%d=%s", i, node.PathStatus(i)))
		}
		st := node.Stats()
		fmt.Printf("%s recv=%d sent=%d retx=%d backlog=%d failovers=%d\n",
			strings.Join(paths, " "), received, st.Sent, st.Retransmits, node.Backlog(), st.FailoverSends)
		if *send > 0 && node.Backlog() == 0 {
			fmt.Println("all datagrams acknowledged")
			return
		}
	}
}

// runElectCmd is the subcommand spelling of the channel election demo.
func runElectCmd(args []string) {
	fs := flag.NewFlagSet("rainnode elect", flag.ExitOnError)
	local := fs.String("local", "", "comma-separated local addresses, one per path")
	remote := fs.String("remote", "", "comma-separated remote addresses, one per path")
	name := fs.String("name", "", "this node's election identity")
	peer := fs.String("peer", "", "the remote end's election identity")
	interval := fs.Duration("report", time.Second, "status report interval")
	fs.Parse(args)
	if *local == "" || *remote == "" {
		fmt.Fprintln(os.Stderr, "rainnode elect: both -local and -remote are required")
		os.Exit(2)
	}
	ch := newUDPChannel()
	node, err := rudp.NewUDPNode(strings.Split(*local, ","), rudp.Config{}, ch.deliver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bind:", err)
		os.Exit(1)
	}
	defer node.Close()
	if err := node.Connect(strings.Split(*remote, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	ch.node = node
	go ch.dispatchLoop()
	runElection(ch, *name, *peer, *interval)
}

// udpChannel adapts the point-to-point UDP channel to the dstore.Mesh
// interface: the local end is node "local", the remote end is "remote".
// Deliveries are queued and dispatched on a dedicated goroutine because the
// UDPNode invokes its deliver callback while holding the connection lock —
// replying inline would deadlock. The queue is unbounded: RUDP has already
// delivered these datagrams reliably and will not retransmit, so dropping
// here would lose them for good (and blocking the receive path against the
// dispatcher, which takes the same lock to reply, could deadlock).
type udpChannel struct {
	node *rudp.UDPNode

	mu       sync.Mutex
	cond     *sync.Cond
	handlers map[string]func(from string, payload []byte)
	queue    [][]byte
}

func newUDPChannel() *udpChannel {
	c := &udpChannel{handlers: make(map[string]func(string, []byte))}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *udpChannel) Handle(node, service string, fn func(from string, payload []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers[service] = fn
}

func (c *udpChannel) SendService(from, to, service string, payload []byte) {
	c.node.Send(rudp.FrameService(service, payload))
}

// SendFrame is the zero-copy SendService: the frame already carries the
// marshaled message, so only the service header is pushed before handing the
// buffer to the connection.
func (c *udpChannel) SendFrame(from, to, service string, f *netbuf.Frame) {
	rudp.PushService(f, service)
	c.node.SendFrame(f)
}

func (c *udpChannel) deliver(p []byte) {
	buf := append([]byte(nil), p...)
	c.mu.Lock()
	c.queue = append(c.queue, buf)
	c.cond.Signal()
	c.mu.Unlock()
}

func (c *udpChannel) dispatchLoop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 {
			c.cond.Wait()
		}
		p := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		service, payload, ok := rudp.SplitService(p)
		if !ok {
			continue
		}
		c.mu.Lock()
		h := c.handlers[service]
		c.mu.Unlock()
		if h != nil {
			h("remote", payload)
		}
	}
}

// electBacklogCap mirrors the simulated mesh's heartbeat backlog cap: the
// channel is reliable, so heartbeats queued toward a dead peer would grow
// without bound — skip beats while the queue is deep.
const electBacklogCap = 8

// runElection drives one election engine over the real-UDP channel: the
// same heartbeat wire format and smallest-identity rule as the simulated
// mesh, logging every leader transition as it happens — the mechanism a
// deployed pair uses to decide which end coordinates repairs. Pull the
// cables and the survivor takes over; heal them and the smaller identity
// wins leadership back at a higher epoch.
func runElection(ch *udpChannel, name, peer string, interval time.Duration) {
	if name == "" || peer == "" {
		fmt.Fprintln(os.Stderr, "-elect requires -name and -peer")
		os.Exit(2)
	}
	var mu sync.Mutex
	n := election.NewNode(name, []string{peer}, election.Config{})
	n.OnLeaderChange(func(leader string, epoch uint64) {
		fmt.Printf("%s leader transition: %s leads at epoch %d\n",
			time.Now().Format(time.RFC3339Nano), leader, epoch)
	})
	// Heartbeats arrive on the dispatch goroutine while the tick loop runs
	// here, so the engine is driven under one lock.
	ch.Handle("local", election.Service, func(from string, payload []byte) {
		if hb, ok := election.UnmarshalHeartbeat(payload); ok {
			mu.Lock()
			n.OnHeartbeat(hb, time.Now().UnixNano())
			mu.Unlock()
		}
	})
	fmt.Printf("election node %q up against %q\n", name, peer)
	tick := time.NewTicker(20 * time.Millisecond)
	report := time.NewTicker(interval)
	defer tick.Stop()
	defer report.Stop()
	for {
		select {
		case <-tick.C:
			mu.Lock()
			hb := n.Tick(time.Now().UnixNano())
			mu.Unlock()
			if ch.node.Backlog() < electBacklogCap {
				ch.SendService("local", "remote", election.Service, election.MarshalHeartbeat(hb))
			}
		case <-report.C:
			mu.Lock()
			leader, epoch := n.Leader(), n.Epoch()
			mu.Unlock()
			fmt.Printf("leader=%s epoch=%d backlog=%d\n", leader, epoch, ch.node.Backlog())
		}
	}
}

// runDaemon serves the dstore protocol until interrupted.
func runDaemon(ch *udpChannel, node *rudp.UDPNode, shard int, interval time.Duration) {
	backend := storage.NewBackend(telemetry.Default().Node("local"))
	d := dstore.NewDaemon(ch, "local", shard, backend, 0)
	fmt.Printf("storage daemon up, shard %d\n", shard)
	for {
		time.Sleep(interval)
		st := d.Stats()
		reads, writes := backend.Loads()
		fmt.Printf("objects=%d reads=%d writes=%d commits=%d chunks_in=%d chunks_out=%d backlog=%d\n",
			backend.Objects(), reads, writes, st.Commits, st.ChunksStored, st.ChunksServed, node.Backlog())
	}
}

// runPutShard streams one file to the remote daemon as a shard.
func runPutShard(ch *udpChannel, id, path string) error {
	if path == "" {
		return fmt.Errorf("-putshard requires -file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	acks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			acks <- m
		}
	})
	const chunk = dstore.DefaultChunkSize
	for off := 0; off < len(data) || off == 0; off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
			Kind:     dstore.KindPutChunk,
			Req:      1,
			ID:       id,
			Shard:    -1, // the daemon's configured index applies
			Off:      int64(off),
			ShardLen: int64(len(data)),
			DataLen:  storage.UnknownSize,
			Data:     data[off:end],
		}.Marshal())
		if end == len(data) {
			break
		}
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case m := <-acks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off >= int64(len(data)) {
				fmt.Printf("stored %s: %d bytes\n", id, len(data))
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for acks")
		}
	}
}

// runPutObj streams a file to the remote daemon as a whole-object replica
// shard (the k=1 block layout: the shard stream is the object itself),
// reading and sending chunk by chunk under the put window so memory stays
// bounded regardless of file size.
func runPutObj(ch *udpChannel, id, path string, block int) error {
	if path == "" {
		return fmt.Errorf("-putobj requires -file")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	acks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			acks <- m
		}
	})
	const chunk = dstore.DefaultChunkSize
	const window = int64(dstore.DefaultWindow) * chunk
	buf := make([]byte, chunk)
	var sent, acked int64
	deadline := time.After(10 * time.Minute)
	for acked < size || size == 0 {
		for sent < size && sent-acked < window {
			n, err := io.ReadFull(f, buf[:min(int64(chunk), size-sent)])
			if err != nil {
				return fmt.Errorf("reading %s at %d: %w", path, sent, err)
			}
			ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
				Kind:     dstore.KindPutChunk,
				Req:      2,
				ID:       id,
				Shard:    -1, // the daemon's configured index applies
				Off:      sent,
				ShardLen: size,
				DataLen:  size,
				BlockLen: int64(block),
				Data:     buf[:n],
			}.Marshal())
			sent += int64(n)
		}
		if size == 0 {
			// Metadata-only commit for an empty object.
			ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{
				Kind: dstore.KindPutChunk, Req: 2, ID: id, Shard: -1, DataLen: 0, BlockLen: int64(block),
			}.Marshal())
		}
		select {
		case m := <-acks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off > acked {
				acked = m.Off
			}
			if size == 0 {
				fmt.Printf("stored %s: 0 bytes\n", id)
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for acks (%d of %d acked)", acked, size)
		}
	}
	fmt.Printf("stored %s: %d bytes\n", id, size)
	return nil
}

// runGetObj streams an object from the remote daemon to stdout (or -out)
// with credit-windowed flow control: each chunk is written as it arrives and
// acked as consumed, so memory stays bounded by the window however large the
// object — the -getobj half of the streaming contract over real sockets.
func runGetObj(ch *udpChannel, id, outPath string) error {
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	chunks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			chunks <- m
		}
	})
	const win = int32(dstore.DefaultWindow)
	ch.SendService("local", "remote", dstore.ServiceDaemon,
		dstore.Msg{Kind: dstore.KindGetReq, Req: 3, ID: id, Win: win}.Marshal())
	var got int64
	total := int64(-1)
	deadline := time.After(10 * time.Minute)
	for total < 0 || got < total {
		select {
		case m := <-chunks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off != got {
				return fmt.Errorf("chunk at %d, expected %d", m.Off, got)
			}
			total = m.ShardLen
			if _, err := w.Write(m.Data); err != nil {
				return err
			}
			got += int64(len(m.Data))
			ch.SendService("local", "remote", dstore.ServiceDaemon,
				dstore.Msg{Kind: dstore.KindGetAck, Req: 3, ID: id, Off: got, Win: win}.Marshal())
		case <-deadline:
			return fmt.Errorf("timed out waiting for chunks (%d of %d)", got, total)
		}
	}
	fmt.Fprintf(os.Stderr, "fetched %s: %d bytes\n", id, got)
	return nil
}

// runGetShard fetches one shard from the remote daemon.
func runGetShard(ch *udpChannel, id, outPath string) error {
	chunks := make(chan dstore.Msg, 64)
	ch.Handle("local", dstore.ServiceClient, func(from string, payload []byte) {
		if m, err := dstore.Unmarshal(payload); err == nil {
			chunks <- m
		}
	})
	ch.SendService("local", "remote", dstore.ServiceDaemon, dstore.Msg{Kind: dstore.KindGetReq, Req: 1, ID: id}.Marshal())
	var buf []byte
	deadline := time.After(30 * time.Second)
	for {
		select {
		case m := <-chunks:
			if m.Err != "" {
				return fmt.Errorf("daemon: %s", m.Err)
			}
			if m.Off != int64(len(buf)) {
				return fmt.Errorf("chunk at %d, expected %d", m.Off, len(buf))
			}
			buf = append(buf, m.Data...)
			if int64(len(buf)) >= m.ShardLen {
				if outPath != "" {
					if err := os.WriteFile(outPath, buf, 0o644); err != nil {
						return err
					}
				}
				fmt.Printf("fetched %s: %d bytes (object size %d)\n", id, len(buf), m.DataLen)
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for chunks")
		}
	}
}
