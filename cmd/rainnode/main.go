// Command rainnode runs one end of a RAIN communication channel over real
// UDP sockets: the RUDP reliable datagram protocol with bundled interfaces
// and consistent-history path monitoring, entirely in user space (§2.5).
//
// Start a receiver, then a sender (addresses are comma-separated, one per
// bundled path):
//
//	rainnode -local 127.0.0.1:7000,127.0.0.1:7001 \
//	         -remote 127.0.0.1:7100,127.0.0.1:7101
//	rainnode -local 127.0.0.1:7100,127.0.0.1:7101 \
//	         -remote 127.0.0.1:7000,127.0.0.1:7001 -send 100
//
// While the sender runs, drop one of the two paths with a firewall rule (or
// by unplugging the interface) and watch the traffic fail over; drop both
// and it stalls until one heals — the behaviour the paper demonstrated by
// pulling Myrinet cables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rain/internal/rudp"
)

func main() {
	local := flag.String("local", "", "comma-separated local addresses, one per path")
	remote := flag.String("remote", "", "comma-separated remote addresses, one per path")
	send := flag.Int("send", 0, "number of datagrams to send (0 = receive only)")
	size := flag.Int("size", 1024, "payload size in bytes")
	interval := flag.Duration("report", time.Second, "status report interval")
	flag.Parse()

	if *local == "" || *remote == "" {
		fmt.Fprintln(os.Stderr, "both -local and -remote are required")
		os.Exit(2)
	}
	locals := strings.Split(*local, ",")
	remotes := strings.Split(*remote, ",")

	received := 0
	node, err := rudp.NewUDPNode(locals, rudp.Config{}, func(p []byte) {
		received++
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bind:", err)
		os.Exit(1)
	}
	defer node.Close()
	if err := node.Connect(remotes); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	fmt.Println("rainnode up on", node.LocalAddrs(), "->", remotes)

	if *send > 0 {
		payload := make([]byte, *size)
		for i := 0; i < *send; i++ {
			node.Send(payload)
		}
		fmt.Printf("queued %d datagrams of %d bytes\n", *send, *size)
	}

	for {
		time.Sleep(*interval)
		var paths []string
		for i := range locals {
			paths = append(paths, fmt.Sprintf("path%d=%s", i, node.PathStatus(i)))
		}
		st := node.Stats()
		fmt.Printf("%s recv=%d sent=%d retx=%d backlog=%d failovers=%d\n",
			strings.Join(paths, " "), received, st.Sent, st.Retransmits, node.Backlog(), st.FailoverSends)
		if *send > 0 && node.Backlog() == 0 {
			fmt.Println("all datagrams acknowledged")
			return
		}
	}
}
