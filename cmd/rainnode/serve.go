package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rain/internal/core"
	"rain/internal/dstore"
	"rain/internal/gateway"
	"rain/internal/telemetry"
)

// runServe runs one full cluster node from a single config: the
// dial-by-address UDP mesh, the storage daemon, membership, election, the
// leader-gated self-heal loop, and the HTTP object gateway with the /debug
// telemetry surface on the same listener.
func runServe(args []string) {
	fs := flag.NewFlagSet("rainnode serve", flag.ExitOnError)
	name := fs.String("name", "", "this node's cluster identity (required, must appear in -ring)")
	ring := fs.String("ring", "", "comma-separated full cluster roster; the first entry seeds the membership token (required)")
	local := fs.String("local", "", "comma-separated local UDP bind addresses, one per bundled path (required)")
	advertise := fs.String("advertise", "", "addresses advertised to peers (default: the resolved binds)")
	peers := fs.String("peers", "", `peer address book "name=addr|addr,name=addr" — one addr per path; the seed at minimum, the rest is learned from hellos`)
	dir := fs.String("dir", "", "shard store directory (default: in-memory)")
	blockSize := fs.Int("block", 0, "streaming block-codeword size in bytes (0 = dstore default)")
	httpAddr := fs.String("http", "", "HTTP listen address for the object gateway (/o/) and /debug surface")
	inflight := fs.Int64("inflight", 0, "gateway admission bound on in-flight buffer bytes (0 = default)")
	fs.Parse(args)

	if *name == "" || *ring == "" || *local == "" {
		fmt.Fprintln(os.Stderr, "rainnode serve: -name, -ring and -local are required")
		os.Exit(2)
	}
	book, err := parsePeerBook(*peers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode serve:", err)
		os.Exit(2)
	}

	// Pre-register the full dstore schema so /debug/metrics exports every
	// family from the first scrape, zero-valued included.
	reg := telemetry.Default()
	dstore.RegisterMetrics(reg, *name)

	node, err := core.StartRealNode(core.NodeConfig{
		Name:       *name,
		Ring:       splitCSV(*ring),
		Locals:     splitCSV(*local),
		Advertise:  splitCSV(*advertise),
		Peers:      book,
		BlockSize:  *blockSize,
		StorageDir: *dir,
		Seed:       time.Now().UnixNano(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainnode serve:", err)
		os.Exit(1)
	}
	defer node.Stop()
	fmt.Printf("node %s up on %v, ring %v\n", *name, node.Mesh.LocalAddrs(), splitCSV(*ring))

	if *httpAddr != "" {
		gw := gateway.New(node.Call, node.Client, gateway.Config{MaxInflightBytes: *inflight})
		mux := http.NewServeMux()
		mux.Handle("/o/", gw)
		mux.Handle("/debug/", telemetry.Handler(reg, telemetry.DefaultTracer()))
		srv := &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "gateway listener:", err)
				os.Exit(1)
			}
		}()
		defer srv.Close()
		fmt.Println("object gateway on", *httpAddr)
	}
	watchDumpSignal(reg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := node.WaitReady(ctx); err == nil {
		fmt.Printf("cluster ready: view %v, leader %s\n", node.View(), node.Leader())
	}
	<-ctx.Done()
	fmt.Println("shutting down")
}

// splitCSV splits a comma-separated flag, mapping "" to nil.
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parsePeerBook parses "name=addr|addr,name=addr" into the mesh's peer
// address book ("|" separates one peer's bundled paths, "," separates
// peers).
func parsePeerBook(s string) (map[string][]string, error) {
	book := make(map[string][]string)
	if s == "" {
		return book, nil
	}
	for _, ent := range strings.Split(s, ",") {
		name, addrs, ok := strings.Cut(ent, "=")
		if !ok || name == "" || addrs == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=addr|addr)", ent)
		}
		book[name] = strings.Split(addrs, "|")
	}
	return book, nil
}
