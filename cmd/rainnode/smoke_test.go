package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rain/internal/telemetry"
)

// freePort reserves an ephemeral port on the given network and returns it.
// The tiny close-to-bind race is acceptable for a smoke test.
func freePort(t *testing.T, network string) int {
	t.Helper()
	switch network {
	case "udp":
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		return c.LocalAddr().(*net.UDPAddr).Port
	default:
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().(*net.TCPAddr).Port
	}
}

// TestDebugSurfaceSmoke builds the real binary, starts it as a storage
// daemon with the debug surface enabled, and asserts /debug/metrics serves
// well-formed Prometheus text spanning every instrumented layer. Gated on
// RAIN_SMOKE because it binds real sockets and shells out to the toolchain;
// CI runs it as the telemetry smoke job.
func TestDebugSurfaceSmoke(t *testing.T) {
	if os.Getenv("RAIN_SMOKE") == "" {
		t.Skip("set RAIN_SMOKE=1 to run the rainnode debug-surface smoke test")
	}
	bin := filepath.Join(t.TempDir(), "rainnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	localPort := freePort(t, "udp")
	remotePort := freePort(t, "udp")
	debugAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t, "tcp"))
	cmd := exec.Command(bin,
		"-local", fmt.Sprintf("127.0.0.1:%d", localPort),
		"-remote", fmt.Sprintf("127.0.0.1:%d", remotePort),
		"-store", "-debug", debugAddr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + debugAddr
	body := fetchEventually(t, base+"/debug/metrics", 10*time.Second)

	fams, err := telemetry.ParsePromText(body)
	if err != nil {
		t.Fatalf("/debug/metrics is not valid Prometheus text: %v", err)
	}
	if len(fams) < 25 {
		t.Errorf("only %d metric families exported, want >= 25", len(fams))
	}
	layers := map[string]bool{}
	for name := range fams {
		for _, p := range []string{"rain_rudp_", "rain_netbuf_", "rain_dstore_", "rain_storage_", "rain_rebalance_"} {
			if strings.HasPrefix(name, p) {
				layers[p] = true
			}
		}
	}
	if len(layers) != 5 {
		t.Errorf("families span %d layers %v, want all of rudp, netbuf, dstore, storage, rebalance", len(layers), layers)
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal(fetchEventually(t, base+"/debug/metrics.json", 5*time.Second), &snap); err != nil {
		t.Fatalf("/debug/metrics.json: %v", err)
	}
	if len(snap.Families) < 25 {
		t.Errorf("JSON snapshot has %d families, want >= 25", len(snap.Families))
	}

	var traces []telemetry.TraceSnapshot
	if err := json.Unmarshal(fetchEventually(t, base+"/debug/traces?n=8", 5*time.Second), &traces); err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
}

// fetchEventually polls a URL until it answers 200, tolerating the window
// before the freshly exec'd process binds its listener.
func fetchEventually(t *testing.T, url string, within time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(within)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return body
			}
			lastErr = fmt.Errorf("status %d: %v", resp.StatusCode, rerr)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return nil
}
